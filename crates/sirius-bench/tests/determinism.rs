//! Parallel-equals-serial determinism, at both parallelism layers:
//!
//! * **Across runs** (the sweep executor): a representative full sweep
//!   (Fig. 9: 4 systems × 5 loads, the paper's headline figure) must
//!   produce byte-identical CSVs and identical per-run digests whether
//!   it runs on 1 worker or 4.
//! * **Within a run** (the sharded slot engine): one simulation split
//!   across shard workers — the TX phase *and* the receiver-partitioned
//!   deliver phase with its ordered digest epilogue — must retire the
//!   exact serial delivered-cell sequence: byte-identical digest, equal
//!   `RunMetrics` counters, and equal FCT percentiles for shards ∈
//!   {1, 2, 4} × {Protocol, Ideal} × {fault-free, classic faults,
//!   correlated+Byzantine} × {materialized, streaming}. (Golden digests
//!   pin serial behavior separately, unblessed, in
//!   `tests/golden_digests.rs`.)
//!
//! The CSV comparison catches ordering or formatting drift; the digest
//! comparison is stronger — it compares the delivered-cell *sequence* of
//! each simulated run, so a nondeterministic simulation that happened to
//! round to the same table cells would still fail here.

use sirius_bench::experiments::fig9;
use sirius_bench::experiments::scale_series::{self, ScaleGeom};
use sirius_bench::Scale;
use sirius_sim::{CcMode, FaultEvent, FaultInjector, RunMetrics, SiriusSim};

#[test]
fn fig9_sweep_is_byte_identical_serial_vs_parallel() {
    let serial = fig9::run(Scale::Smoke, 1, 1);
    let parallel = fig9::run(Scale::Smoke, 1, 4);

    assert_eq!(serial.len(), parallel.len());

    // Run digests: the delivered-cell sequence of every Sirius run must
    // match point-for-point (ESN fluid runs report digest 0 for both).
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            (s.system, s.load),
            (p.system, p.load),
            "sweep order diverged between jobs=1 and jobs=4"
        );
        assert_eq!(
            s.digest, p.digest,
            "digest diverged at system={} load={}",
            s.system, s.load
        );
    }
    assert!(
        serial.iter().any(|p| p.digest != 0),
        "no Sirius run produced a digest; the check is vacuous"
    );

    // CSV artifacts: byte-for-byte identical, exactly what a user diffing
    // results/ between serial and parallel runs would see.
    let (fct_s, gp_s) = fig9::tables(&serial);
    let (fct_p, gp_p) = fig9::tables(&parallel);
    assert_eq!(fct_s.to_csv(), fct_p.to_csv(), "fig9a CSV diverged");
    assert_eq!(gp_s.to_csv(), gp_p.to_csv(), "fig9b CSV diverged");
}

/// A fault script covering every draw path the sharded engine must keep
/// deterministic: grey erasure (per-node RNG streams), mistune
/// corruption (pre-pass scratch), a crash + recovery (failure plane,
/// detector credit), and control loss (epoch-boundary serial stream).
fn fault_script(seed: u64) -> FaultInjector {
    use sirius_core::topology::NodeId;
    let mut inj = FaultInjector::new(seed);
    inj.push(FaultEvent::GreyLink {
        node: NodeId(3),
        uplink: 1,
        drop_prob: 0.3,
        from: 2,
        until: 40,
    });
    inj.push(FaultEvent::GreyLink {
        node: NodeId(9),
        uplink: 0,
        drop_prob: 0.08,
        from: 4,
        until: 60,
    });
    inj.push(FaultEvent::Mistune {
        node: NodeId(5),
        offset: 2,
        from: 6,
        until: 30,
    });
    inj.push(FaultEvent::Crash {
        node: NodeId(12),
        epoch: 8,
    });
    inj.push(FaultEvent::Recover {
        node: NodeId(12),
        epoch: 45,
    });
    inj.push(FaultEvent::ControlLoss {
        drop_prob: 0.2,
        from: 3,
        until: 25,
    });
    inj
}

/// The correlated + Byzantine arm: a laser-bank chip failure and an AWGR
/// grating band (both expand to fleet-wide column sets through the AWGR
/// route relation) plus a Byzantine node whose forge draws ride its own
/// per-node stream and whose request inflation rides the boundary. At
/// Smoke scale (16 nodes, groups of 4): chip 0 of the bank feeding
/// group 2's uplink-1 AWGR kills nodes {9, 10}; the grating band [0, 2)
/// of group 1's uplink-0 AWGR kills nodes {4, 5}.
fn correlated_byz_script(seed: u64) -> FaultInjector {
    use sirius_core::topology::NodeId;
    FaultInjector::new(seed)
        .bank_failure(2, 1, 0, 2, 3, 50)
        .grating_fault(1, 0, 0, 2, 5, 60)
        .byzantine(NodeId(14), 0.5, 4, 2, u64::MAX)
}

/// A seeded fault-script constructor, or `None` for a fault-free run.
type Script = Option<fn(u64) -> FaultInjector>;

fn run_with_shards(mode: CcMode, shards: usize, script: Script) -> RunMetrics {
    let scale = Scale::Smoke;
    let net = scale.network();
    let wl = scale.workload(0.6, 11).generate();
    let cfg = scale
        .sim_config(net, &wl, 11)
        .with_mode(mode)
        .with_shards(shards)
        // Audit-enabled runs take the serial observer path by design; the
        // matrix tests the sharded engine, so audit off explicitly.
        .with_audit(false);
    let mut sim = SiriusSim::new(cfg);
    if let Some(script) = script {
        sim.set_faults(script(11));
    }
    sim.run(&wl)
}

/// Everything in `RunMetrics` that describes simulated behavior (i.e.
/// not host wall-clock) as a comparable value.
fn behavior_of(m: &RunMetrics) -> impl std::fmt::Debug + PartialEq {
    (
        m.digest,
        m.delivered_bytes,
        m.cells_delivered,
        m.epochs_simulated,
        m.incomplete_flows,
        m.span,
        m.peak_node_fabric_cells,
        m.peak_node_local_cells,
        m.peak_reorder_flow_bytes,
        m.flows
            .iter()
            .map(|f| (f.completion, f.delivered))
            .collect::<Vec<_>>(),
        m.fault.as_ref().map(|f| {
            (
                f.cells_lost_crash,
                f.cells_lost_grey,
                f.cells_lost_mistune,
                f.cells_rerouted,
                f.requests_lost,
                f.grants_lost,
                f.suspicion_events,
                f.exclusions,
                f.readmissions,
                f.column_omissions,
                (
                    f.cells_forged,
                    f.cells_forged_dropped,
                    f.requests_forged,
                    f.max_forged_per_epoch,
                    f.byz_quarantined.clone(),
                    f.correlated_domains.clone(),
                ),
            )
        }),
    )
}

/// The tentpole acceptance matrix: sharded runs are byte-identical to
/// serial across shard counts, CC modes, and fault scripts. Ideal mode
/// falls back to the serial loop (shared back-pressure state), so its
/// rows additionally pin that `with_shards` is behavior-inert there.
#[test]
fn sharded_runs_are_byte_identical_to_serial() {
    let scripts: [(&str, Script); 3] = [
        ("none", None),
        ("classic", Some(fault_script)),
        ("correlated+byz", Some(correlated_byz_script)),
    ];
    for mode in [CcMode::Protocol, CcMode::Ideal] {
        for (name, script) in scripts {
            let serial = run_with_shards(mode, 1, script);
            assert_ne!(serial.digest, 0, "serial digest vacuous");
            if name == "classic" {
                let f = serial.fault.as_ref().expect("fault report missing");
                assert!(
                    f.cells_lost_grey + f.cells_lost_mistune + f.cells_lost_crash > 0,
                    "{mode:?}: fault script drew no losses; the matrix is vacuous"
                );
            }
            if name == "correlated+byz" {
                let f = serial.fault.as_ref().expect("fault report missing");
                assert!(
                    f.cells_forged > 0 && f.column_omissions > 0,
                    "{mode:?}: correlated+byz arm fired nothing; the matrix is vacuous"
                );
            }
            for shards in [2usize, 4] {
                let sharded = run_with_shards(mode, shards, script);
                assert_eq!(
                    behavior_of(&serial),
                    behavior_of(&sharded),
                    "behavior diverged: mode={mode:?} shards={shards} script={name}"
                );
                // The headline latency stats must be byte-equal too:
                // they derive from per-flow completion times folded in
                // the ordered epilogue, not from the digest.
                for p in [50.0, 99.0] {
                    assert_eq!(
                        serial.fct_percentile(p, u64::MAX),
                        sharded.fct_percentile(p, u64::MAX),
                        "FCT p{p} diverged: mode={mode:?} shards={shards} script={name}"
                    );
                }
            }
        }
    }
}

/// The scale-series arm: small geometries so the matrix stays fast in
/// debug builds (the real smoke points run in `ci.sh scale-smoke` on
/// the release binary; the engine paths exercised are identical).
fn scale_geoms() -> Vec<ScaleGeom> {
    vec![
        ScaleGeom {
            nodes: 64,
            grating: 16,
            flows: 1_000,
        },
        // The issue's N=512 smoke geometry, flow count cut for debug
        // speed.
        ScaleGeom {
            nodes: 512,
            grating: 32,
            flows: 4_000,
        },
    ]
}

/// Streaming admission is a pure refactor of workload handling: feeding
/// the engine a lazy [`sirius_workload::FlowStream`] versus a
/// materialized, test-only `generate()` vector of the same spec must
/// retire the identical delivered-cell sequence.
#[test]
fn streaming_digest_matches_materialized_workload() {
    for geom in scale_geoms() {
        let net = scale_series::point_network(geom);
        let spec = scale_series::point_workload(geom, &net, 5);
        let span = spec.mean_interarrival() * spec.flows;
        let mut cfg = sirius_sim::SiriusSimConfig::new(net)
            .with_seed(5)
            .with_audit(false);
        cfg.drain_timeout = sirius_core::units::Duration::from_us(200).max(span / 2);
        let streamed = SiriusSim::new(cfg.clone()).run_streaming(spec.stream());
        let materialized = SiriusSim::new(cfg).run_streaming(spec.generate().into_iter());
        assert_ne!(streamed.digest, 0, "n={}: digest vacuous", geom.nodes);
        assert_eq!(
            behavior_of(&streamed),
            behavior_of(&materialized),
            "n={}: streaming diverged from materialized workload",
            geom.nodes
        );
    }
}

/// The deliver-sharded streaming arm: receiver-partitioned arrival
/// processing under streaming admission — where completed-flow eviction
/// and the FCT histogram fold ride the ordered digest epilogue — must
/// match the serial streaming run exactly, including the histogram
/// percentiles the scale series reports as `fct_p50_us`/`fct_p99_us`.
#[test]
fn streaming_sharded_matches_serial_including_fct_percentiles() {
    let geom = ScaleGeom {
        nodes: 64,
        grating: 16,
        flows: 1_000,
    };
    let net = scale_series::point_network(geom);
    let spec = scale_series::point_workload(geom, &net, 5);
    let span = spec.mean_interarrival() * spec.flows;
    let mut cfg = sirius_sim::SiriusSimConfig::new(net)
        .with_seed(5)
        .with_audit(false);
    cfg.drain_timeout = sirius_core::units::Duration::from_us(200).max(span / 2);
    let hist_pcts = |m: &RunMetrics| {
        let h = m
            .fct_hist
            .as_ref()
            .expect("streaming run lost its FCT histogram");
        (h.percentile_ps(50.0), h.percentile_ps(99.0))
    };
    let serial = SiriusSim::new(cfg.clone()).run_streaming(spec.stream());
    assert_ne!(serial.digest, 0, "serial digest vacuous");
    assert!(hist_pcts(&serial).0.is_some(), "serial FCT p50 vacuous");
    for shards in [2usize, 4] {
        let sharded = SiriusSim::new(cfg.clone().with_shards(shards)).run_streaming(spec.stream());
        assert_eq!(
            behavior_of(&serial),
            behavior_of(&sharded),
            "streaming behavior diverged at shards={shards}"
        );
        assert_eq!(
            hist_pcts(&serial),
            hist_pcts(&sharded),
            "FCT percentiles diverged at shards={shards}"
        );
    }
}

/// The scale series over the {shards} × {jobs} grid: every combination
/// must produce the same per-point digests and simulated behavior as
/// the serial, single-worker reference.
#[test]
fn scale_series_is_identical_across_shards_and_jobs() {
    let geoms = scale_geoms();
    let reference = scale_series::run_points(&geoms, 5, 1, 1);
    assert_eq!(reference.len(), geoms.len());
    for p in &reference {
        assert_ne!(p.digest, 0, "n={}: digest vacuous", p.nodes);
        assert!(p.completed > 0, "n={}: nothing completed", p.nodes);
    }
    for shards in [1usize, 2] {
        for jobs in [1usize, 2] {
            if (shards, jobs) == (1, 1) {
                continue;
            }
            let pts = scale_series::run_points(&geoms, 5, jobs, shards);
            for (r, p) in reference.iter().zip(&pts) {
                assert_eq!(
                    (r.nodes, r.flows, r.cells, r.epochs, r.completed, r.digest),
                    (p.nodes, p.flows, p.cells, p.epochs, p.completed, p.digest),
                    "scale point diverged at shards={shards} jobs={jobs}"
                );
                assert_eq!(
                    r.resident_flows_max, p.resident_flows_max,
                    "resident peak diverged at shards={shards} jobs={jobs}"
                );
            }
        }
    }
}

/// Memory-boundedness: grow the flow population 10× at a fixed geometry
/// and the in-flight peak must stay put (it is a function of arrival
/// rate × flow service time, not of how many flows stream through).
#[test]
fn resident_flow_state_stays_bounded_as_flows_grow() {
    let base = ScaleGeom {
        nodes: 64,
        grating: 16,
        flows: 500,
    };
    let long = ScaleGeom {
        flows: 5_000,
        ..base
    };
    let pts = scale_series::run_points(&[base, long], 5, 1, 1);
    let (p1, p2) = (&pts[0], &pts[1]);
    assert!(p2.completed > 0);
    assert!(
        p2.resident_flows_max < p2.flows / 4,
        "10x flows: resident peak {} is not far below {} total",
        p2.resident_flows_max,
        p2.flows
    );
    // Steady-state concurrency, not population, sets the peak: 10× the
    // flows may not even double it.
    assert!(
        p2.resident_flows_max < p1.resident_flows_max * 2 + 64,
        "resident peak grew with population: {} -> {}",
        p1.resident_flows_max,
        p2.resident_flows_max
    );
}
