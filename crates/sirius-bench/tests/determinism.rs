//! Parallel-equals-serial determinism: the acceptance check for the
//! sweep executor. A representative full sweep (Fig. 9: 4 systems × 5
//! loads, the paper's headline figure) must produce byte-identical CSVs
//! and identical per-run digests whether it runs on 1 worker or 4.
//!
//! The CSV comparison catches ordering or formatting drift; the digest
//! comparison is stronger — it compares the delivered-cell *sequence* of
//! each simulated run, so a nondeterministic simulation that happened to
//! round to the same table cells would still fail here.

use sirius_bench::experiments::fig9;
use sirius_bench::Scale;

#[test]
fn fig9_sweep_is_byte_identical_serial_vs_parallel() {
    let serial = fig9::run(Scale::Smoke, 1, 1);
    let parallel = fig9::run(Scale::Smoke, 1, 4);

    assert_eq!(serial.len(), parallel.len());

    // Run digests: the delivered-cell sequence of every Sirius run must
    // match point-for-point (ESN fluid runs report digest 0 for both).
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            (s.system, s.load),
            (p.system, p.load),
            "sweep order diverged between jobs=1 and jobs=4"
        );
        assert_eq!(
            s.digest, p.digest,
            "digest diverged at system={} load={}",
            s.system, s.load
        );
    }
    assert!(
        serial.iter().any(|p| p.digest != 0),
        "no Sirius run produced a digest; the check is vacuous"
    );

    // CSV artifacts: byte-for-byte identical, exactly what a user diffing
    // results/ between serial and parallel runs would see.
    let (fct_s, gp_s) = fig9::tables(&serial);
    let (fct_p, gp_p) = fig9::tables(&parallel);
    assert_eq!(fct_s.to_csv(), fct_p.to_csv(), "fig9a CSV diverged");
    assert_eq!(gp_s.to_csv(), gp_p.to_csv(), "fig9b CSV diverged");
}
