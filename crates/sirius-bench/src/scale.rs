//! Experiment scale presets.
//!
//! `Paper` is the exact §7 setup (128 racks x 24 servers, ~200k flows) —
//! minutes of wall-clock per figure. `Quick` is a proportionally reduced
//! deployment for CI and criterion benches — the same ratios (uplinks =
//! nodes/grating-ports, uplink factor 1.5, 50 Gbps channels), one quarter
//! the racks, and fewer flows. `Smoke` is for unit tests of the harness
//! itself.

use sirius_core::config::SiriusConfig;
use sirius_core::units::{Duration, Rate};
use sirius_sim::EsnConfig;
use sirius_workload::{Pareto, Pattern, WorkloadSpec};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: harness self-tests.
    Smoke,
    /// Reduced: default for the harness binaries and criterion benches.
    Quick,
    /// The paper's full §7 setup (`--full`).
    Paper,
}

impl Scale {
    /// The Sirius network for this scale.
    pub fn network(self) -> SiriusConfig {
        match self {
            Scale::Smoke => {
                let mut c = SiriusConfig::scaled(16, 4);
                c.servers_per_node = 2;
                // Two servers share a 200 Gbps node: keep the NIC at least
                // as fast as the per-server share so load 1.0 is offerable.
                c.server_rate = Rate::from_gbps(100);
                // Keep fiber flight well under an epoch, as at paper scale.
                c.propagation = Duration::from_ns(100);
                c
            }
            Scale::Quick => {
                let mut c = SiriusConfig::scaled(32, 8);
                c.servers_per_node = 8;
                c.propagation = Duration::from_ns(100);
                c
            }
            Scale::Paper => SiriusConfig::paper_sim(),
        }
    }

    /// Flows to simulate.
    pub fn flows(self) -> u64 {
        match self {
            Scale::Smoke => 2_000,
            Scale::Quick => 10_000,
            Scale::Paper => 200_000,
        }
    }

    /// Per-server bandwidth share `R` (the paper's load/goodput
    /// normalizer): rack base uplink bandwidth / servers per rack.
    pub fn server_share(self) -> Rate {
        let net = self.network();
        Rate::from_bps(net.node_bandwidth().as_bps() / net.servers_per_node as u64)
    }

    /// Workload spec at a given normalized load. Flow sizes are truncated
    /// so the largest flow stays small relative to the run (the paper's
    /// 200k-flow runs get the same effect from sheer population size).
    pub fn workload(self, load: f64, seed: u64) -> WorkloadSpec {
        let net = self.network();
        let cap = match self {
            Scale::Paper => 1e8,
            _ => 1e7,
        };
        WorkloadSpec {
            servers: net.total_servers() as u32,
            server_rate: self.server_share(),
            load,
            sizes: Pareto::paper_default().truncated(cap),
            flows: self.flows(),
            pattern: Pattern::Uniform,
            seed,
        }
    }

    /// Simulator config for a generated workload: the drain window after
    /// the last arrival is proportional to the arrival span, so overloaded
    /// runs report goodput over a comparable horizon instead of being
    /// dominated by however long we let the backlog drain.
    pub fn sim_config(
        self,
        net: SiriusConfig,
        wl: &[sirius_workload::Flow],
        seed: u64,
    ) -> sirius_sim::SiriusSimConfig {
        let span = wl
            .last()
            .map(|f| Duration::from_ps(f.arrival.as_ps()))
            .unwrap_or(Duration::from_us(100));
        let mut cfg = sirius_sim::SiriusSimConfig::new(net).with_seed(seed);
        cfg.drain_timeout = Duration::from_us(200).max(span / 2);
        cfg
    }

    /// The matching ESN baseline (`oversubscription` 1.0 or 3.0).
    pub fn esn(self, oversubscription: f64) -> EsnConfig {
        let net = self.network();
        EsnConfig {
            servers: net.total_servers() as u32,
            server_rate: self.server_share(),
            servers_per_rack: net.servers_per_node as u32,
            oversubscription,
            base_latency: Duration::from_us(3),
        }
    }

    /// Drain timeout for Sirius runs: overloaded runs never finish, so cap
    /// the post-arrival simulation.
    pub fn drain_timeout(self) -> Duration {
        match self {
            Scale::Smoke => Duration::from_ms(2),
            Scale::Quick => Duration::from_ms(2),
            Scale::Paper => Duration::from_ms(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section7() {
        let net = Scale::Paper.network();
        assert_eq!(net.nodes, 128);
        assert_eq!(net.total_servers(), 3072);
        assert_eq!(Scale::Paper.flows(), 200_000);
        // R = 400 Gbps / 24 servers = 16.67 Gbps.
        let r = Scale::Paper.server_share().as_gbps_f64();
        assert!((r - 16.67).abs() < 0.01, "R = {r}");
    }

    #[test]
    fn quick_scale_preserves_ratios() {
        let net = Scale::Quick.network();
        net.validate().unwrap();
        assert_eq!(net.base_uplinks, net.nodes / net.grating_ports);
        assert_eq!(net.uplink_factor, 1.5);
        // 4 x 50G uplinks / 8 servers = 25 Gbps per server.
        assert_eq!(Scale::Quick.server_share().as_gbps_f64(), 25.0);
    }

    #[test]
    fn workload_and_esn_agree_on_population() {
        for s in [Scale::Smoke, Scale::Quick] {
            let w = s.workload(0.5, 1);
            let e = s.esn(1.0);
            assert_eq!(w.servers, e.servers);
            assert_eq!(w.server_rate, e.server_rate);
        }
    }
}
