//! Shared argument parsing for every harness binary.
//!
//! Each bin used to hand-roll `Scale::from_args` plus ad-hoc flags; this
//! module is the single parser for the common surface:
//!
//! * `--full` / `--quick` / `--smoke` — experiment scale (default quick);
//! * `--jobs N` / `--jobs=N` — sweep workers (default `SIRIUS_JOBS`, then
//!   [`std::thread::available_parallelism`]);
//! * `--shards N` / `--shards=N` — slot-engine worker shards *within* one
//!   run (default: the simulator's own `SIRIUS_SHARDS`-or-1 default;
//!   sharded runs are digest-identical to `--shards 1`);
//! * `--timing` — `xp` only: run the suite serially and in parallel and
//!   emit `results/BENCH_xp_wall.json`;
//! * `--live` — `xp` only: also run the live-process sync measurement
//!   (spawns real `sirius-sync-node` processes over UDP loopback; off by
//!   default so `xp` stays deterministic and machine-independent).
//!
//! Unknown `--flags` are an error (a typo'd `--job 4` silently running a
//! serial sweep would be worse); bare operands are collected into
//! [`Cli::rest`] for bins with positional arguments (`fig9_point`'s load
//! percent).

use crate::pool;
use crate::scale::Scale;

/// Per-experiment memory footprint hint: how much state one sweep job
/// holds at once.
///
/// Most experiments are `Standard` — paper-geometry runs whose state is
/// small enough that fanning out across every core is safe. A
/// `HighMemory` experiment (the scale-out series, whose largest point is
/// a 4096-node deployment) must not be multiplied blindly by `--jobs`:
/// each concurrent job duplicates the whole per-node state. Binaries
/// pass their class to [`Cli::effective_jobs`], which caps the worker
/// count and says so, instead of silently letting `--jobs 8` allocate
/// eight 4096-node simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryClass {
    /// Footprint small enough to run one job per core.
    Standard,
    /// Footprint dominated by per-node/per-point state: cap sweep
    /// workers at `cap` regardless of `--jobs`.
    HighMemory {
        /// Maximum concurrent sweep jobs for this experiment.
        cap: usize,
    },
}

/// Parsed common command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    pub scale: Scale,
    /// Sweep worker count (≥ 1).
    pub jobs: usize,
    /// Slot-engine shards per run: `Some(n)` when `--shards n` was given
    /// (apply via [`SiriusSimConfig::with_shards`]), `None` to leave the
    /// simulator's default (`SIRIUS_SHARDS` or serial) in place.
    ///
    /// [`SiriusSimConfig::with_shards`]: sirius_sim::SiriusSimConfig::with_shards
    pub shards: Option<usize>,
    /// `xp --timing`: measure serial vs parallel wall-clock.
    pub timing: bool,
    /// `xp --live`: include the live-process sync measurement.
    pub live: bool,
    /// Positional (non-flag) arguments, in order.
    pub rest: Vec<String>,
}

impl Cli {
    /// Parse `std::env::args`, exiting with usage on error.
    pub fn parse() -> Cli {
        match Cli::parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--full|--quick|--smoke] [--jobs N] [--shards N] [--timing] [--live] [args...]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Pure parser (testable). `args` excludes the program name. `--jobs`
    /// defaults to [`pool::default_jobs`] when absent.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli {
            scale: Scale::Quick,
            jobs: 0,
            shards: None,
            timing: false,
            live: false,
            rest: Vec::new(),
        };
        let mut scale_flag: Option<&str> = None;
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            let mut set_scale = |flag: &'static str, s: Scale| -> Result<(), String> {
                if let Some(prev) = scale_flag.replace(flag) {
                    if prev != flag {
                        return Err(format!("conflicting scale flags {prev} and {flag}"));
                    }
                }
                cli.scale = s;
                Ok(())
            };
            match a.as_str() {
                "--full" => set_scale("--full", Scale::Paper)?,
                "--quick" => set_scale("--quick", Scale::Quick)?,
                "--smoke" => set_scale("--smoke", Scale::Smoke)?,
                "--timing" => cli.timing = true,
                "--live" => cli.live = true,
                "--jobs" => {
                    let v = args.next().ok_or("--jobs needs a worker count")?;
                    cli.jobs = parse_jobs(&v)?;
                }
                "--shards" => {
                    let v = args.next().ok_or("--shards needs a shard count")?;
                    cli.shards = Some(parse_count("--shards", &v)?);
                }
                _ => {
                    if let Some(v) = a.strip_prefix("--jobs=") {
                        cli.jobs = parse_jobs(v)?;
                    } else if let Some(v) = a.strip_prefix("--shards=") {
                        cli.shards = Some(parse_count("--shards", v)?);
                    } else if a.starts_with("--") {
                        return Err(format!("unknown flag {a}"));
                    } else {
                        cli.rest.push(a);
                    }
                }
            }
        }
        if cli.jobs == 0 {
            cli.jobs = pool::default_jobs();
        }
        Ok(cli)
    }

    /// The sweep worker count this experiment may actually use. For
    /// [`MemoryClass::HighMemory`] experiments the requested `--jobs`
    /// (or core-count default) is capped, with a warning naming the cap
    /// so a user who typed `--jobs 8` learns why the sweep ran narrower.
    pub fn effective_jobs(&self, class: MemoryClass) -> usize {
        match class {
            MemoryClass::Standard => self.jobs,
            MemoryClass::HighMemory { cap } => {
                let cap = cap.max(1);
                if self.jobs > cap {
                    eprintln!(
                        "warning: high-memory sweep: capping --jobs {} to {cap} \
                         (each concurrent job duplicates the full deployment state)",
                        self.jobs
                    );
                }
                self.jobs.min(cap)
            }
        }
    }
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    parse_count("--jobs", v)
}

fn parse_count(flag: &str, v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} wants an integer >= 1, got {v:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_scale_and_machine_jobs() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.scale, Scale::Quick);
        assert!(cli.jobs >= 1);
        assert_eq!(cli.shards, None, "absent --shards must not override");
        assert!(!cli.timing);
        assert!(!cli.live);
        assert!(cli.rest.is_empty());
    }

    #[test]
    fn shards_flag_parses_both_forms_and_rejects_garbage() {
        assert_eq!(parse(&["--shards", "4"]).unwrap().shards, Some(4));
        assert_eq!(parse(&["--shards=2"]).unwrap().shards, Some(2));
        assert_eq!(parse(&["--shards", "1"]).unwrap().shards, Some(1));
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards"]).is_err());
        assert!(parse(&["--shards=lots"]).is_err());
    }

    #[test]
    fn scale_jobs_and_positionals_parse() {
        let cli = parse(&["--full", "--jobs", "4", "75"]).unwrap();
        assert_eq!(cli.scale, Scale::Paper);
        assert_eq!(cli.jobs, 4);
        assert_eq!(cli.rest, vec!["75".to_string()]);
        let cli = parse(&["--jobs=2", "--smoke", "--timing"]).unwrap();
        assert_eq!((cli.scale, cli.jobs, cli.timing), (Scale::Smoke, 2, true));
        assert!(parse(&["--live"]).unwrap().live);
        // Repeating the same scale flag is harmless.
        assert!(parse(&["--smoke", "--smoke"]).is_ok());
    }

    #[test]
    fn effective_jobs_caps_only_high_memory() {
        let mut cli = parse(&["--jobs", "8"]).unwrap();
        assert_eq!(cli.effective_jobs(MemoryClass::Standard), 8);
        assert_eq!(cli.effective_jobs(MemoryClass::HighMemory { cap: 2 }), 2);
        assert_eq!(cli.effective_jobs(MemoryClass::HighMemory { cap: 1 }), 1);
        // Under the cap, the request passes through untouched.
        cli.jobs = 1;
        assert_eq!(cli.effective_jobs(MemoryClass::HighMemory { cap: 2 }), 1);
        // A zero cap is treated as 1, never 0 workers.
        assert_eq!(cli.effective_jobs(MemoryClass::HighMemory { cap: 0 }), 1);
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(parse(&["--job", "4"]).is_err(), "typo'd flag must not pass");
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs=many"]).is_err());
        assert!(parse(&["--full", "--smoke"]).is_err(), "conflicting scales");
    }
}
