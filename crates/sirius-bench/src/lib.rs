//! # sirius-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation. Each figure has a binary (`cargo run --release -p
//! sirius-bench --bin fig9`) that prints the paper's rows/series and
//! writes a CSV under `results/`; pass `--full` for the paper-scale
//! configuration. Every sweep fans out across `--jobs N` workers (env
//! `SIRIUS_JOBS`, default: all cores) through [`pool::Sweep`], with
//! results collected in submission order so parallel runs emit
//! byte-identical tables, CSVs, and digests to `--jobs 1`. Criterion
//! benches under `benches/` time scaled-down versions of the same code
//! paths plus the simulator hot loops.
//!
//! | Paper artifact | Binary | Module |
//! |---|---|---|
//! | Fig 2a/2b | `fig2` | [`experiments::fig2`] |
//! | Fig 6a/6b + §5 variants | `fig6` | [`experiments::fig6`] |
//! | Fig 8a-8d | `fig8` | [`experiments::fig8`] |
//! | Fig 9a/9b | `fig9` | [`experiments::fig9`] |
//! | Fig 10a-10d | `fig10` | [`experiments::fig10`] |
//! | Fig 11 | `fig11` | [`experiments::fig11`] |
//! | Fig 12 | `fig12` | [`experiments::fig12`] |
//! | Fig 13 | `fig13` | [`experiments::fig13`] |
//! | §3.2/§4.5 tuning tables | `tuning` | [`experiments::tuning`] |
//! | §6 sync measurement | `sync_xp` | [`experiments::sync`] |
//! | §6 sync, live UDP processes | `live_sync` | [`experiments::live_sync`] |
//! | CC on/ideal/off ablation | `ablation` | [`experiments::ablation`] |
//! | §4.5 fault tolerance | `fault_tolerance` | [`experiments::fault_tolerance`] |
//! | RELAY_BURST sensitivity | `relay_burst` | [`experiments::relay_burst`] |
//! | simulator throughput | `sim_throughput` | [`experiments::sim_throughput`] |
//! | scale-out series (streaming) | `scale_series` | [`experiments::scale_series`] |
//! | everything | `xp` | all of the above |

pub mod cli;
pub mod experiments;
pub mod pool;
pub mod scale;
pub mod table;
pub mod wall;

pub use cli::{Cli, MemoryClass};
pub use pool::Sweep;
pub use scale::Scale;
pub use table::Table;
