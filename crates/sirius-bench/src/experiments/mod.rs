//! One module per paper figure/table; each exposes `run`/`*_table`
//! functions used by both the harness binaries and the criterion benches.

pub mod ablation;
pub mod correlated_faults;
pub mod fault_tolerance;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod granularity;
pub mod live_sync;
pub mod relay_burst;
pub mod repair_granularity;
pub mod scale_series;
pub mod sim_throughput;
pub mod sync;
pub mod tuning;
