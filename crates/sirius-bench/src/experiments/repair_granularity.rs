//! Repair granularity: what a permanently-dead TX column costs under
//! link-granular repair (omit only the affected (node, uplink) column,
//! capacity floor `1 - k/(N*U)`) versus the paper's §4.5 whole-node rule
//! (exclude the node, floor `1 - k/N`).
//!
//! Both arms run the *same* fault script — `k` single dead columns on
//! distinct racks — and the same saturation workload over the survivor
//! population; only the repair policy differs. Node-granular behavior is
//! recovered by setting the column-escalation fraction to zero, which
//! escalates the very first suspected column to a whole-node exclusion.

use crate::experiments::fault_tolerance::{fabric_limited_net, survivor_workload};
use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, Table};
use sirius_core::topology::NodeId;
use sirius_core::units::{Duration, Time};
use sirius_sim::{FaultInjector, SiriusSim, SiriusSimConfig};

/// One `k`-dead-columns point, measured under both repair policies.
#[derive(Debug, Clone)]
pub struct GranularityPoint {
    /// Dead TX columns, one per afflicted rack.
    pub k: u32,
    pub nodes: u32,
    pub uplinks: u32,
    /// `1 - k/(N*U)`: what the schedule retains when only the dead
    /// columns are omitted.
    pub cf_link: f64,
    /// Degraded / healthy goodput with link-granular repair.
    pub ratio_link: f64,
    /// `1 - k/N`: the whole-node rule's floor on the same faults.
    pub cf_node: f64,
    /// Degraded / healthy goodput with whole-node exclusion.
    pub ratio_node: f64,
}

impl GranularityPoint {
    /// Goodput retained by repairing per-column instead of per-node.
    pub fn advantage(&self) -> f64 {
        self.ratio_link - self.ratio_node
    }
}

/// Column-count sweep proportional to the rack count: enough faults that
/// the two capacity lines separate clearly, never more than one column
/// per rack so no node crosses the escalation threshold.
pub fn k_sweep(nodes: u32) -> Vec<u32> {
    let mut ks = vec![1, (nodes / 8).max(2), nodes / 4];
    ks.dedup();
    ks
}

/// The three arms every `k` is measured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    /// No faults: the ratio denominator.
    Healthy,
    /// k dead columns, link-granular repair (default escalation).
    Link,
    /// Same faults, whole-node rule (escalation fraction 0).
    Node,
}

/// One (k, arm) run: goodput over the saturated horizon plus the
/// end-of-run capacity factor (1.0 for the healthy arm). Regenerates its
/// own workload, so each pool job carries only its own flows.
fn arm_point(scale: Scale, seed: u64, k: u32, arm: Arm) -> (f64, f64) {
    let net = fabric_limited_net(scale);
    let n = net.nodes as u32;
    let start = Time::ZERO + net.epoch() * 12; // routing settles first
    let servers = (n - k) * net.servers_per_node as u32;
    let wl = survivor_workload(&net, servers, servers as u64 * 40, seed, start);
    let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
    let horizon = Time::from_ps(last * 4 / 5);
    let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(seed);
    cfg.drain_timeout = Duration::from_ms(2);
    if arm == Arm::Node {
        cfg = cfg.with_column_escalation_fraction(0.0);
    }

    let mut sim = SiriusSim::new(cfg);
    if arm != Arm::Healthy {
        let mut inj = FaultInjector::new(seed);
        for i in 0..k {
            inj = inj.grey_link(NodeId(n - 1 - i), 1, 1.0, 0, u64::MAX);
        }
        sim = sim.with_faults(inj);
    }
    let m = sim.run(&wl);
    let cf = m
        .fault
        .as_ref()
        .map(|f| f.capacity_factor_end)
        .unwrap_or(1.0);
    (
        m.goodput_within(horizon, servers as u64, net.server_rate),
        cf,
    )
}

/// One healthy run plus one degraded run per repair policy, all over the
/// survivor population only and measured strictly inside the arrival
/// span (mirrors the §4.5 goodput methodology). The three arms of each
/// `k` are independent pool jobs.
pub fn run(scale: Scale, seed: u64, ks: &[u32], jobs: usize) -> Vec<GranularityPoint> {
    let net = fabric_limited_net(scale);
    let n = net.nodes as u32;
    let uplinks = net.total_uplinks() as u32;
    let mut sweep = Sweep::new();
    for &k in ks {
        for arm in [Arm::Healthy, Arm::Link, Arm::Node] {
            sweep.push(format!("repair_granularity k={k} arm={arm:?}"), move || {
                arm_point(scale, seed, k, arm)
            });
        }
    }
    let results = sweep.run(jobs);
    ks.iter()
        .zip(results.chunks_exact(3))
        .map(|(&k, arms)| {
            let [(gh, _), (gl, cf_link), (gn, cf_node)] = arms else {
                unreachable!("three arms per k");
            };
            GranularityPoint {
                k,
                nodes: n,
                uplinks,
                cf_link: *cf_link,
                ratio_link: gl / gh,
                cf_node: *cf_node,
                ratio_node: gn / gh,
            }
        })
        .collect()
}

pub fn table(points: &[GranularityPoint]) -> Table {
    let mut t = Table::new(
        "repair granularity: k dead TX columns, link-granular vs whole-node",
        &[
            "k",
            "nodes",
            "uplinks",
            "cf_link",
            "ratio_link",
            "cf_node",
            "ratio_node",
            "advantage",
        ],
    );
    for p in points {
        t.row(vec![
            p.k.to_string(),
            p.nodes.to_string(),
            p.uplinks.to_string(),
            f(p.cf_link, 4),
            f(p.ratio_link, 4),
            f(p.cf_node, 4),
            f(p.ratio_node, 4),
            f(p.advantage(), 4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_granular_repair_keeps_more_capacity_at_smoke_scale() {
        let pts = run(Scale::Smoke, 11, &[2], 2);
        let p = &pts[0];
        let nu = (p.nodes * p.uplinks) as f64;
        assert!((p.cf_link - (1.0 - 2.0 / nu)).abs() < 1e-9);
        assert!((p.cf_node - (1.0 - 2.0 / p.nodes as f64)).abs() < 1e-9);
        assert!(
            p.ratio_link >= p.cf_link - 0.05,
            "link ratio {} below floor {}",
            p.ratio_link,
            p.cf_link
        );
        assert!(
            p.ratio_link > p.cf_node,
            "link ratio {} should beat the whole-node floor {}",
            p.ratio_link,
            p.cf_node
        );
        assert!(p.advantage() > 0.0);
        assert_eq!(table(&pts).len(), 1);
    }
}
