//! Repair granularity: what a permanently-dead TX column costs under
//! link-granular repair (omit only the affected (node, uplink) column,
//! capacity floor `1 - k/(N*U)`) versus the paper's §4.5 whole-node rule
//! (exclude the node, floor `1 - k/N`).
//!
//! Both arms run the *same* fault script — `k` single dead columns on
//! distinct racks — and the same saturation workload over the survivor
//! population; only the repair policy differs. Node-granular behavior is
//! recovered by setting the column-escalation fraction to zero, which
//! escalates the very first suspected column to a whole-node exclusion.

use crate::experiments::fault_tolerance::{fabric_limited_net, survivor_workload};
use crate::scale::Scale;
use crate::table::{f, Table};
use sirius_core::topology::NodeId;
use sirius_core::units::{Duration, Time};
use sirius_sim::{FaultInjector, SiriusSim, SiriusSimConfig};

/// One `k`-dead-columns point, measured under both repair policies.
#[derive(Debug, Clone)]
pub struct GranularityPoint {
    /// Dead TX columns, one per afflicted rack.
    pub k: u32,
    pub nodes: u32,
    pub uplinks: u32,
    /// `1 - k/(N*U)`: what the schedule retains when only the dead
    /// columns are omitted.
    pub cf_link: f64,
    /// Degraded / healthy goodput with link-granular repair.
    pub ratio_link: f64,
    /// `1 - k/N`: the whole-node rule's floor on the same faults.
    pub cf_node: f64,
    /// Degraded / healthy goodput with whole-node exclusion.
    pub ratio_node: f64,
}

impl GranularityPoint {
    /// Goodput retained by repairing per-column instead of per-node.
    pub fn advantage(&self) -> f64 {
        self.ratio_link - self.ratio_node
    }
}

/// Column-count sweep proportional to the rack count: enough faults that
/// the two capacity lines separate clearly, never more than one column
/// per rack so no node crosses the escalation threshold.
pub fn k_sweep(nodes: u32) -> Vec<u32> {
    let mut ks = vec![1, (nodes / 8).max(2), nodes / 4];
    ks.dedup();
    ks
}

/// One healthy run plus one degraded run per repair policy, all over the
/// survivor population only and measured strictly inside the arrival
/// span (mirrors the §4.5 goodput methodology).
pub fn run(scale: Scale, seed: u64, ks: &[u32]) -> Vec<GranularityPoint> {
    let net = fabric_limited_net(scale);
    let n = net.nodes as u32;
    let uplinks = net.total_uplinks() as u32;
    let start = Time::ZERO + net.epoch() * 12; // routing settles first
    let mut out = Vec::new();
    for &k in ks {
        let servers = (n - k) * net.servers_per_node as u32;
        let wl = survivor_workload(&net, servers, servers as u64 * 40, seed, start);
        let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
        let horizon = Time::from_ps(last * 4 / 5);
        let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(seed);
        cfg.drain_timeout = Duration::from_ms(2);

        let inj = || {
            let mut inj = FaultInjector::new(seed);
            for i in 0..k {
                inj = inj.grey_link(NodeId(n - 1 - i), 1, 1.0, 0, u64::MAX);
            }
            inj
        };

        let healthy = SiriusSim::new(cfg.clone()).run(&wl);
        let link = SiriusSim::new(cfg.clone()).with_faults(inj()).run(&wl);
        let node = SiriusSim::new(cfg.with_column_escalation_fraction(0.0))
            .with_faults(inj())
            .run(&wl);

        let g =
            |m: &sirius_sim::RunMetrics| m.goodput_within(horizon, servers as u64, net.server_rate);
        let gh = g(&healthy);
        out.push(GranularityPoint {
            k,
            nodes: n,
            uplinks,
            cf_link: link.fault.as_ref().unwrap().capacity_factor_end,
            ratio_link: g(&link) / gh,
            cf_node: node.fault.as_ref().unwrap().capacity_factor_end,
            ratio_node: g(&node) / gh,
        });
    }
    out
}

pub fn table(points: &[GranularityPoint]) -> Table {
    let mut t = Table::new(
        "repair granularity: k dead TX columns, link-granular vs whole-node",
        &[
            "k",
            "nodes",
            "uplinks",
            "cf_link",
            "ratio_link",
            "cf_node",
            "ratio_node",
            "advantage",
        ],
    );
    for p in points {
        t.row(vec![
            p.k.to_string(),
            p.nodes.to_string(),
            p.uplinks.to_string(),
            f(p.cf_link, 4),
            f(p.ratio_link, 4),
            f(p.cf_node, 4),
            f(p.ratio_node, 4),
            f(p.advantage(), 4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_granular_repair_keeps_more_capacity_at_smoke_scale() {
        let pts = run(Scale::Smoke, 11, &[2]);
        let p = &pts[0];
        let nu = (p.nodes * p.uplinks) as f64;
        assert!((p.cf_link - (1.0 - 2.0 / nu)).abs() < 1e-9);
        assert!((p.cf_node - (1.0 - 2.0 / p.nodes as f64)).abs() < 1e-9);
        assert!(
            p.ratio_link >= p.cf_link - 0.05,
            "link ratio {} below floor {}",
            p.ratio_link,
            p.cf_link
        );
        assert!(
            p.ratio_link > p.cf_node,
            "link ratio {} should beat the whole-node floor {}",
            p.ratio_link,
            p.cf_node
        );
        assert!(p.advantage() > 0.0);
        assert_eq!(table(&pts).len(), 1);
    }
}
