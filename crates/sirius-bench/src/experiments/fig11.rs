//! Fig. 11: 99th-percentile FCT of short flows vs guardband size at full
//! load. As in the paper, the slot length is adjusted so the guardband is
//! always 10% of the slot — so large guardbands mean long slots, long
//! epochs, and more queuing latency at intermediates.

use crate::experiments::fig9::SHORT_FLOW_BYTES;
use crate::scale::Scale;
use crate::table::{fct_ms, Table};
use sirius_core::units::Duration;
use sirius_sim::{CcMode, EsnSim, SiriusSim};

/// The paper's x-axis.
pub const GUARDBANDS_NS: [u64; 5] = [1, 5, 10, 20, 40];

/// Scale a network so `guard` is 10% of the slot: the cell transmits for
/// 9x the guardband at the channel rate. Header overhead scales with the
/// cell (as in the paper's 540/562 payload fraction) so the comparison
/// isolates the epoch-length effect rather than a fixed-header tax on
/// tiny cells.
pub fn network_for_guardband(scale: Scale, guard: Duration) -> sirius_core::SiriusConfig {
    let mut net = scale.network();
    let bytes = (net.channel_rate.bytes_in(guard * 9) as u32).max(24);
    net.cell_bytes = bytes;
    net.payload_bytes = ((bytes as u64 * 540) / 562).max(16) as u32;
    net.guardband = guard;
    net
}

#[derive(Debug, Clone)]
pub struct Point {
    pub system: &'static str,
    pub guard_ns: u64,
    pub fct_p99: Option<Duration>,
}

pub fn run(scale: Scale, load: f64, seed: u64) -> Vec<Point> {
    let wl = scale.workload(load, seed).generate();
    let mut out = Vec::new();
    for &g in &GUARDBANDS_NS {
        let net = network_for_guardband(scale, Duration::from_ns(g));
        let cfg = scale.sim_config(net.clone(), &wl, seed);
        let m = SiriusSim::new(cfg.clone()).run(&wl);
        out.push(Point {
            system: "Sirius",
            guard_ns: g,
            fct_p99: m.fct_percentile(99.0, SHORT_FLOW_BYTES),
        });
        let mi = SiriusSim::new(cfg.with_mode(CcMode::Ideal)).run(&wl);
        out.push(Point {
            system: "Sirius (Ideal)",
            guard_ns: g,
            fct_p99: mi.fct_percentile(99.0, SHORT_FLOW_BYTES),
        });
    }
    // ESN has no guardband: one horizontal reference line.
    let esn = EsnSim::new(scale.esn(1.0)).run(&wl);
    for &g in &GUARDBANDS_NS {
        out.push(Point {
            system: "ESN (Ideal)",
            guard_ns: g,
            fct_p99: esn.fct_percentile(99.0, SHORT_FLOW_BYTES),
        });
    }
    out
}

pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Fig 11: 99th-perc. FCT of short flows vs guardband (10% of slot)",
        &["guard_ns", "system", "fct_p99_ms"],
    );
    for p in points {
        t.row(vec![
            p.guard_ns.to_string(),
            p.system.to_string(),
            fct_ms(p.fct_p99),
        ]);
    }
    t
}

/// Scalar summary used by tests: p99 FCT of Sirius at a guardband.
pub fn sirius_fct(points: &[Point], guard_ns: u64) -> Option<Duration> {
    points
        .iter()
        .find(|p| p.system == "Sirius" && p.guard_ns == guard_ns)
        .and_then(|p| p.fct_p99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guardband_scaling_keeps_10_percent() {
        for &g in &GUARDBANDS_NS {
            let net = network_for_guardband(Scale::Quick, Duration::from_ns(g));
            net.validate().unwrap();
            let overhead = net.guardband.as_ps() as f64 / net.slot().as_ps() as f64;
            assert!(
                (overhead - 0.10).abs() < 0.02,
                "guard {g} ns -> overhead {overhead}"
            );
        }
    }

    #[test]
    fn fct_degrades_with_large_guardbands() {
        // The motivation for nanosecond switching: 40 ns guardbands mean
        // 4x longer epochs than 10 ns and visibly worse tail FCT.
        // Below saturation, so the epoch-length queuing effect dominates
        // rather than overload backlog (the harness runs L=1.0 as in the
        // paper; at paper scale both show the same shape).
        let pts = run(Scale::Smoke, 0.25, 5);
        let fast = sirius_fct(&pts, 1).unwrap();
        let slow = sirius_fct(&pts, 40).unwrap();
        assert!(
            slow > fast,
            "40 ns guardband FCT {slow} not worse than 1 ns {fast}"
        );
        assert_eq!(table(&pts).len(), pts.len());
    }
}
