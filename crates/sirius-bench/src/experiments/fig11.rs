//! Fig. 11: 99th-percentile FCT of short flows vs guardband size at full
//! load. As in the paper, the slot length is adjusted so the guardband is
//! always 10% of the slot — so large guardbands mean long slots, long
//! epochs, and more queuing latency at intermediates.

use crate::experiments::fig9::SHORT_FLOW_BYTES;
use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{fct_ms, Table};
use sirius_core::units::Duration;
use sirius_sim::{CcMode, EsnSim, SiriusSim};

/// The paper's x-axis.
pub const GUARDBANDS_NS: [u64; 5] = [1, 5, 10, 20, 40];

/// Scale a network so `guard` is 10% of the slot: the cell transmits for
/// 9x the guardband at the channel rate. Header overhead scales with the
/// cell (as in the paper's 540/562 payload fraction) so the comparison
/// isolates the epoch-length effect rather than a fixed-header tax on
/// tiny cells.
pub fn network_for_guardband(scale: Scale, guard: Duration) -> sirius_core::SiriusConfig {
    let mut net = scale.network();
    let bytes = (net.channel_rate.bytes_in(guard * 9) as u32).max(24);
    net.cell_bytes = bytes;
    net.payload_bytes = ((bytes as u64 * 540) / 562).max(16) as u32;
    net.guardband = guard;
    net
}

#[derive(Debug, Clone)]
pub struct Point {
    pub system: &'static str,
    pub guard_ns: u64,
    pub fct_p99: Option<Duration>,
}

/// One (guardband, CC mode) Sirius point; regenerates its own workload.
pub fn sirius_point(scale: Scale, load: f64, seed: u64, guard_ns: u64, mode: CcMode) -> Point {
    let wl = scale.workload(load, seed).generate();
    let net = network_for_guardband(scale, Duration::from_ns(guard_ns));
    let cfg = scale.sim_config(net, &wl, seed).with_mode(mode);
    let m = SiriusSim::new(cfg).run(&wl);
    Point {
        system: match mode {
            CcMode::Ideal => "Sirius (Ideal)",
            _ => "Sirius",
        },
        guard_ns,
        fct_p99: m.fct_percentile(99.0, SHORT_FLOW_BYTES),
    }
}

pub fn run(scale: Scale, load: f64, seed: u64, jobs: usize) -> Vec<Point> {
    // Each job returns the row(s) it owns: one per Sirius (guard, mode)
    // pair, and one job for the guardband-free ESN reference line that
    // replicates itself across the x-axis.
    let mut sweep: Sweep<Vec<Point>> = Sweep::new();
    for &g in &GUARDBANDS_NS {
        for mode in [CcMode::Protocol, CcMode::Ideal] {
            sweep.push(format!("fig11 guard={g}ns mode={mode:?}"), move || {
                vec![sirius_point(scale, load, seed, g, mode)]
            });
        }
    }
    sweep.push("fig11 ESN reference", move || {
        let wl = scale.workload(load, seed).generate();
        let esn = EsnSim::new(scale.esn(1.0)).run(&wl);
        GUARDBANDS_NS
            .iter()
            .map(|&g| Point {
                system: "ESN (Ideal)",
                guard_ns: g,
                fct_p99: esn.fct_percentile(99.0, SHORT_FLOW_BYTES),
            })
            .collect()
    });
    sweep.run(jobs).into_iter().flatten().collect()
}

pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Fig 11: 99th-perc. FCT of short flows vs guardband (10% of slot)",
        &["guard_ns", "system", "fct_p99_ms"],
    );
    for p in points {
        t.row(vec![
            p.guard_ns.to_string(),
            p.system.to_string(),
            fct_ms(p.fct_p99),
        ]);
    }
    t
}

/// Scalar summary used by tests: p99 FCT of Sirius at a guardband.
pub fn sirius_fct(points: &[Point], guard_ns: u64) -> Option<Duration> {
    points
        .iter()
        .find(|p| p.system == "Sirius" && p.guard_ns == guard_ns)
        .and_then(|p| p.fct_p99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guardband_scaling_keeps_10_percent() {
        for &g in &GUARDBANDS_NS {
            let net = network_for_guardband(Scale::Quick, Duration::from_ns(g));
            net.validate().unwrap();
            let overhead = net.guardband.as_ps() as f64 / net.slot().as_ps() as f64;
            assert!(
                (overhead - 0.10).abs() < 0.02,
                "guard {g} ns -> overhead {overhead}"
            );
        }
    }

    #[test]
    fn fct_degrades_with_large_guardbands() {
        // The motivation for nanosecond switching: 40 ns guardbands mean
        // 4x longer epochs than 10 ns and visibly worse tail FCT.
        // Below saturation, so the epoch-length queuing effect dominates
        // rather than overload backlog (the harness runs L=1.0 as in the
        // paper; at paper scale both show the same shape).
        let pts = run(Scale::Smoke, 0.25, 5, 2);
        let fast = sirius_fct(&pts, 1).unwrap();
        let slow = sirius_fct(&pts, 40).unwrap();
        assert!(
            slow > fast,
            "40 ns guardband FCT {slow} not worse than 1 ns {fast}"
        );
        assert_eq!(table(&pts).len(), pts.len());
    }
}
