//! Fig. 13: impact of the mean flow size (512 B to 100 KB) on FCT and
//! goodput — the cost of Sirius' fixed-size cells. Tiny flows waste most
//! of a 540 B cell payload; ESN's variable-size packets do not.

use crate::experiments::fig9::SHORT_FLOW_BYTES;
use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, fct_ms, Table};
use sirius_core::units::Duration;
use sirius_sim::{EsnSim, SiriusSim};
use sirius_workload::Pareto;

/// The paper's x-axis (mean flow size, bytes).
pub const MEAN_SIZES: [u64; 8] = [512, 1024, 2048, 4096, 16_384, 32_768, 65_536, 100_000];

#[derive(Debug, Clone)]
pub struct Point {
    pub system: &'static str,
    pub mean_bytes: u64,
    pub fct_p99: Option<Duration>,
    pub goodput: f64,
}

/// The workload at one mean flow size: Pareto resized around `mean`, and
/// the population scaled so the offered window stays long enough to
/// exercise the fabric (smaller flows arrive proportionally faster at
/// equal load; cap 25x to bound runtime).
fn mean_size_workload(scale: Scale, mean: u64, load: f64, seed: u64) -> Vec<sirius_workload::Flow> {
    let mut spec = scale.workload(load, seed);
    spec.sizes = Pareto::with_mean(1.05, mean as f64).truncated(1e7);
    let factor = (100_000.0 / mean as f64).clamp(1.0, 25.0);
    spec.flows = (spec.flows as f64 * factor) as u64;
    spec.generate()
}

/// One (mean size, system) run; regenerates its own workload. `shards`
/// is the slot-engine worker count for the Sirius runs (`None`: the
/// simulator's `SIRIUS_SHARDS`-or-serial default); sharded points are
/// digest-identical to serial, so it only moves wall-clock.
fn system_point(
    scale: Scale,
    mean: u64,
    load: f64,
    seed: u64,
    esn: bool,
    shards: Option<usize>,
) -> Point {
    let net = scale.network();
    let servers = net.total_servers() as u64;
    let wl = mean_size_workload(scale, mean, load, seed);
    let horizon = wl.last().unwrap().arrival;
    let (system, m) = if esn {
        ("ESN (Ideal)", EsnSim::new(scale.esn(1.0)).run(&wl))
    } else {
        let mut cfg = scale.sim_config(net, &wl, seed);
        if let Some(s) = shards {
            cfg = cfg.with_shards(s);
        }
        ("Sirius", SiriusSim::new(cfg).run(&wl))
    };
    Point {
        system,
        mean_bytes: mean,
        fct_p99: m.fct_percentile(99.0, SHORT_FLOW_BYTES),
        goodput: m.goodput_within(horizon, servers, scale.server_share()),
    }
}

/// One mean-size point (both systems), serially.
pub fn run_point(scale: Scale, mean: u64, load: f64, seed: u64) -> Vec<Point> {
    vec![
        system_point(scale, mean, load, seed, false, None),
        system_point(scale, mean, load, seed, true, None),
    ]
}

/// The full mean-size sweep. `jobs` fans runs across the pool; `shards`
/// additionally splits each Sirius run across slot-engine workers —
/// fig13 is the suite's wall-clock bottleneck (its 100 KB points are the
/// longest single runs), so intra-run sharding helps even when the sweep
/// is already saturating the pool with 16 jobs.
pub fn run(scale: Scale, load: f64, seed: u64, jobs: usize, shards: Option<usize>) -> Vec<Point> {
    let mut sweep = Sweep::new();
    for &mean in &MEAN_SIZES {
        for esn in [false, true] {
            let label = if esn { "ESN" } else { "Sirius" };
            sweep.push(format!("fig13 mean={mean}B system={label}"), move || {
                system_point(scale, mean, load, seed, esn, shards)
            });
        }
    }
    sweep.run(jobs)
}

pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Fig 13: FCT and goodput vs mean flow size (fixed-size cell overhead)",
        &["mean_flow_size", "system", "fct_p99_ms", "goodput"],
    );
    for p in points {
        t.row(vec![
            p.mean_bytes.to_string(),
            p.system.to_string(),
            fct_ms(p.fct_p99),
            f(p.goodput, 3),
        ]);
    }
    t
}

/// Goodput gap Sirius/ESN at a mean size.
pub fn goodput_gap(points: &[Point], mean: u64) -> f64 {
    let g = |sys: &str| {
        points
            .iter()
            .find(|p| p.system == sys && p.mean_bytes == mean)
            .map(|p| p.goodput)
            .unwrap_or(0.0)
    };
    let esn = g("ESN (Ideal)");
    if esn == 0.0 {
        return 0.0;
    }
    g("Sirius") / esn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_padding_hurts_tiny_flows_only() {
        // Paper: at F = 512 B the goodput gap is ~1.7x (ratio ~0.6); at
        // larger means Sirius approaches ESN.
        let mut pts = run(Scale::Smoke, 0.5, 13, 2, Some(2));
        // Keep only the sizes this test reasons about.
        pts.retain(|p| p.mean_bytes == 512 || p.mean_bytes == 65_536);
        let small = goodput_gap(&pts, 512);
        let large = goodput_gap(&pts, 65_536);
        assert!(
            small < large,
            "gap should close with flow size: 512 B ratio {small}, 64 KB ratio {large}"
        );
        assert!(
            small < 0.9,
            "tiny flows should show real cell overhead: {small}"
        );
        assert!(large > 0.6, "large flows should approach ESN: {large}");
    }
}
