//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * **Congestion control off (`Greedy`)** — §4.3's opening argument:
//!   without the request/grant round, several sources relay cells for the
//!   same destination through the same intermediate and "queues can grow
//!   very large". We measure peak per-node fabric occupancy and tail FCT
//!   with the protocol, the idealized back-pressure bound, and no control
//!   at all.
//! * **Uniform vs skewed VLB** is covered by Fig. 12 (uplink factor), and
//!   the sync/PLL ablation by the `sync_xp` harness.

use crate::experiments::fig9::SHORT_FLOW_BYTES;
use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, fct_ms, Table};
use sirius_sim::{CcMode, SiriusSim};

/// The ablation arms, in table order.
pub const MODES: [(&str, CcMode); 3] = [
    ("Protocol (Q=4)", CcMode::Protocol),
    ("Ideal back-pressure", CcMode::Ideal),
    ("No control (greedy)", CcMode::Greedy),
];

#[derive(Debug, Clone)]
pub struct Point {
    pub mode: &'static str,
    pub load: f64,
    pub fct_p99_ms: String,
    pub goodput: f64,
    pub peak_queue_kb: f64,
    pub reorder_kb: f64,
}

/// One (load, CC mode) arm; regenerates its own workload.
pub fn run_point(scale: Scale, name: &'static str, mode: CcMode, load: f64, seed: u64) -> Point {
    let net = scale.network();
    let wl = scale.workload(load, seed).generate();
    let horizon = wl.last().unwrap().arrival;
    let cfg = scale.sim_config(net.clone(), &wl, seed).with_mode(mode);
    let m = SiriusSim::new(cfg).run(&wl);
    Point {
        mode: name,
        load,
        fct_p99_ms: fct_ms(m.fct_percentile(99.0, SHORT_FLOW_BYTES)),
        goodput: m.goodput_within(horizon, net.total_servers() as u64, scale.server_share()),
        peak_queue_kb: m.peak_node_fabric_bytes() as f64 / 1000.0,
        reorder_kb: m.peak_reorder_flow_bytes as f64 / 1000.0,
    }
}

pub fn run(scale: Scale, loads: &[f64], seed: u64, jobs: usize) -> Vec<Point> {
    let mut sweep = Sweep::new();
    for &load in loads {
        for (name, mode) in MODES {
            sweep.push(
                format!("ablation load={:.0}% mode={name}", load * 100.0),
                move || run_point(scale, name, mode, load, seed),
            );
        }
    }
    sweep.run(jobs)
}

pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Ablation: congestion control vs idealized vs none",
        &[
            "load_%",
            "mode",
            "fct_p99_ms",
            "goodput",
            "peak_queue_KB",
            "reorder_KB",
        ],
    );
    for p in points {
        t.row(vec![
            f(p.load * 100.0, 0),
            p.mode.to_string(),
            p.fct_p99_ms.clone(),
            f(p.goodput, 3),
            f(p.peak_queue_kb, 1),
            f(p.reorder_kb, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_queues_dwarf_the_protocols() {
        // The protocol bounds relay queues at Q cells per destination;
        // greedy mode has no bound and hot intermediates accumulate far
        // more under bursty load.
        let pts = run(Scale::Smoke, &[0.75], 3, 2);
        let get = |mode: &str| pts.iter().find(|p| p.mode == mode).unwrap();
        let proto = get("Protocol (Q=4)");
        let greedy = get("No control (greedy)");
        assert!(
            greedy.peak_queue_kb > 2.0 * proto.peak_queue_kb,
            "greedy peak {} KB vs protocol {} KB — CC is not doing anything?",
            greedy.peak_queue_kb,
            proto.peak_queue_kb
        );
    }
}
