//! Fig. 9: 99th-percentile FCT for short flows and average goodput vs
//! network load, for ESN (Ideal), ESN-OSUB (Ideal), Sirius, and
//! Sirius (Ideal).

use crate::scale::Scale;
use crate::table::{f, fct_ms, Table};
use sirius_core::units::{Duration, Time};
use sirius_sim::{CcMode, EsnSim, RunMetrics, SiriusSim};

/// The paper's x-axis.
pub const LOADS: [f64; 5] = [0.10, 0.25, 0.50, 0.75, 1.00];
/// "Short flows" cutoff (flow size < 100 KB).
pub const SHORT_FLOW_BYTES: u64 = 100_000;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    pub system: &'static str,
    pub load: f64,
    pub fct_p99: Option<Duration>,
    pub goodput: f64,
}

fn point(system: &'static str, load: f64, m: &RunMetrics, scale: Scale, horizon: Time) -> Point {
    let net = scale.network();
    Point {
        system,
        load,
        fct_p99: m.fct_percentile(99.0, SHORT_FLOW_BYTES),
        goodput: m.goodput_within(horizon, net.total_servers() as u64, scale.server_share()),
    }
}

/// Run one load point for all four systems. Goodput is measured over the
/// offered-load window (last arrival), the same horizon for every system.
pub fn run_load(scale: Scale, load: f64, seed: u64) -> Vec<Point> {
    let wl = scale.workload(load, seed).generate();
    let horizon = wl.last().unwrap().arrival;
    let mut out = Vec::new();

    let cfg = scale.sim_config(scale.network(), &wl, seed);
    out.push(point(
        "Sirius",
        load,
        &SiriusSim::new(cfg.clone()).run(&wl),
        scale,
        horizon,
    ));

    let cfg_ideal = cfg.with_mode(CcMode::Ideal);
    out.push(point(
        "Sirius (Ideal)",
        load,
        &SiriusSim::new(cfg_ideal).run(&wl),
        scale,
        horizon,
    ));

    out.push(point(
        "ESN (Ideal)",
        load,
        &EsnSim::new(scale.esn(1.0)).run(&wl),
        scale,
        horizon,
    ));
    out.push(point(
        "ESN-OSUB (Ideal)",
        load,
        &EsnSim::new(scale.esn(3.0)).run(&wl),
        scale,
        horizon,
    ));
    out
}

/// The full Fig. 9 sweep.
pub fn run(scale: Scale, seed: u64) -> Vec<Point> {
    LOADS
        .iter()
        .flat_map(|&l| run_load(scale, l, seed))
        .collect()
}

/// Render the two panels as tables.
pub fn tables(points: &[Point]) -> (Table, Table) {
    let mut fct = Table::new(
        "Fig 9a: 99th-perc. FCT of short flows (<100 KB), ms",
        &["load_%", "system", "fct_p99_ms"],
    );
    let mut gp = Table::new(
        "Fig 9b: average server goodput (normalized)",
        &["load_%", "system", "goodput"],
    );
    for p in points {
        fct.row(vec![
            f(p.load * 100.0, 0),
            p.system.to_string(),
            fct_ms(p.fct_p99),
        ]);
        gp.row(vec![
            f(p.load * 100.0, 0),
            p.system.to_string(),
            f(p.goodput, 3),
        ]);
    }
    (fct, gp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_systems() {
        let pts = run_load(Scale::Smoke, 0.25, 42);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.goodput > 0.0, "{} produced no goodput", p.system);
        }
        let (t1, t2) = tables(&pts);
        assert_eq!(t1.len(), 4);
        assert_eq!(t2.len(), 4);
    }

    #[test]
    fn shape_sirius_tracks_esn_and_beats_osub() {
        // The paper's headline comparison at a congested load: ESN-OSUB
        // collapses; Sirius stays near ESN (Ideal).
        let pts = run_load(Scale::Smoke, 0.75, 7);
        let get = |name: &str| pts.iter().find(|p| p.system == name).unwrap();
        let sirius = get("Sirius");
        let esn = get("ESN (Ideal)");
        let osub = get("ESN-OSUB (Ideal)");
        assert!(
            sirius.goodput > osub.goodput,
            "Sirius {} <= OSUB {}",
            sirius.goodput,
            osub.goodput
        );
        assert!(
            sirius.goodput > 0.5 * esn.goodput,
            "Sirius {} far below ESN {}",
            sirius.goodput,
            esn.goodput
        );
    }
}
