//! Fig. 9: 99th-percentile FCT for short flows and average goodput vs
//! network load, for ESN (Ideal), ESN-OSUB (Ideal), Sirius, and
//! Sirius (Ideal).

use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, fct_ms, Table};
use sirius_core::units::{Duration, Time};
use sirius_sim::{CcMode, EsnSim, RunMetrics, SiriusSim};

/// The paper's x-axis.
pub const LOADS: [f64; 5] = [0.10, 0.25, 0.50, 0.75, 1.00];
/// "Short flows" cutoff (flow size < 100 KB).
pub const SHORT_FLOW_BYTES: u64 = 100_000;

/// The four systems, in the paper's legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    Sirius,
    SiriusIdeal,
    Esn,
    EsnOsub,
}

impl System {
    pub const ALL: [System; 4] = [
        System::Sirius,
        System::SiriusIdeal,
        System::Esn,
        System::EsnOsub,
    ];

    pub fn label(self) -> &'static str {
        match self {
            System::Sirius => "Sirius",
            System::SiriusIdeal => "Sirius (Ideal)",
            System::Esn => "ESN (Ideal)",
            System::EsnOsub => "ESN-OSUB (Ideal)",
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    pub system: &'static str,
    pub load: f64,
    pub fct_p99: Option<Duration>,
    pub goodput: f64,
    /// The run's delivered-cell-sequence digest (0 for the fluid ESN
    /// baselines) — lets determinism checks compare the simulated run
    /// itself, not just the rounded table cells.
    pub digest: u64,
}

fn point(system: &'static str, load: f64, m: &RunMetrics, scale: Scale, horizon: Time) -> Point {
    let net = scale.network();
    Point {
        system,
        load,
        fct_p99: m.fct_percentile(99.0, SHORT_FLOW_BYTES),
        goodput: m.goodput_within(horizon, net.total_servers() as u64, scale.server_share()),
        digest: m.digest,
    }
}

/// Run one (system, load) point. The workload is regenerated inside the
/// point (deterministic for a given `(scale, load, seed)`), so a sweep's
/// peak memory scales with the worker count, not the sweep size.
pub fn run_point(scale: Scale, system: System, load: f64, seed: u64) -> Point {
    let wl = scale.workload(load, seed).generate();
    let horizon = wl.last().unwrap().arrival;
    let m = match system {
        System::Sirius => SiriusSim::new(scale.sim_config(scale.network(), &wl, seed)).run(&wl),
        System::SiriusIdeal => {
            let cfg = scale.sim_config(scale.network(), &wl, seed);
            SiriusSim::new(cfg.with_mode(CcMode::Ideal)).run(&wl)
        }
        System::Esn => EsnSim::new(scale.esn(1.0)).run(&wl),
        System::EsnOsub => EsnSim::new(scale.esn(3.0)).run(&wl),
    };
    point(system.label(), load, &m, scale, horizon)
}

/// Run one load point for all four systems, serially. Goodput is measured
/// over the offered-load window (last arrival), the same horizon for
/// every system.
pub fn run_load(scale: Scale, load: f64, seed: u64) -> Vec<Point> {
    System::ALL
        .iter()
        .map(|&s| run_point(scale, s, load, seed))
        .collect()
}

/// The full Fig. 9 sweep as (system, load) jobs for the pool.
pub fn sweep(scale: Scale, seed: u64) -> Sweep<Point> {
    let mut sweep = Sweep::new();
    for &load in &LOADS {
        for &system in &System::ALL {
            sweep.push(
                format!("fig9 load={:.0}% system={}", load * 100.0, system.label()),
                move || run_point(scale, system, load, seed),
            );
        }
    }
    sweep
}

/// The full Fig. 9 sweep on `jobs` workers.
pub fn run(scale: Scale, seed: u64, jobs: usize) -> Vec<Point> {
    sweep(scale, seed).run(jobs)
}

/// Render the two panels as tables.
pub fn tables(points: &[Point]) -> (Table, Table) {
    let mut fct = Table::new(
        "Fig 9a: 99th-perc. FCT of short flows (<100 KB), ms",
        &["load_%", "system", "fct_p99_ms"],
    );
    let mut gp = Table::new(
        "Fig 9b: average server goodput (normalized)",
        &["load_%", "system", "goodput"],
    );
    for p in points {
        fct.row(vec![
            f(p.load * 100.0, 0),
            p.system.to_string(),
            fct_ms(p.fct_p99),
        ]);
        gp.row(vec![
            f(p.load * 100.0, 0),
            p.system.to_string(),
            f(p.goodput, 3),
        ]);
    }
    (fct, gp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_systems() {
        let pts = run_load(Scale::Smoke, 0.25, 42);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.goodput > 0.0, "{} produced no goodput", p.system);
        }
        let (t1, t2) = tables(&pts);
        assert_eq!(t1.len(), 4);
        assert_eq!(t2.len(), 4);
    }

    #[test]
    fn shape_sirius_tracks_esn_and_beats_osub() {
        // The paper's headline comparison at a congested load: ESN-OSUB
        // collapses; Sirius stays near ESN (Ideal).
        let pts = run_load(Scale::Smoke, 0.75, 7);
        let get = |name: &str| pts.iter().find(|p| p.system == name).unwrap();
        let sirius = get("Sirius");
        let esn = get("ESN (Ideal)");
        let osub = get("ESN-OSUB (Ideal)");
        assert!(
            sirius.goodput > osub.goodput,
            "Sirius {} <= OSUB {}",
            sirius.goodput,
            osub.goodput
        );
        assert!(
            sirius.goodput > 0.5 * esn.goodput,
            "Sirius {} far below ESN {}",
            sirius.goodput,
            esn.goodput
        );
    }
}
