//! Correlated failure domains and the Byzantine data plane, end to end:
//! a dead laser-bank chip (or AWGR grating band) takes out a *set* of TX
//! columns across the fleet through the AWGR route relation, and a
//! Byzantine rack launches counterfeit cells and inflated requests.
//!
//! The bank sweep measures the tentpole claim: a `k`-wavelength chip
//! failure costs `k/(N*U)` of the fabric when diagnosed as one
//! correlated column domain (cross-node correlation suppresses per-node
//! escalation), versus the `k/N` floor the paper's §4.5 whole-node rule
//! pays for the same photons. Both arms run the identical script and the
//! identical survivor workload; only the repair policy differs
//! (node-granular behavior via `with_column_escalation_fraction(0.0)`,
//! as in `repair_granularity`).
//!
//! The Byzantine sweep measures the damage bound: every counterfeit is
//! dropped at the receiver (header/schedule/grant validation), per-epoch
//! forgery attributed to the scheduled transmitter is capped by the
//! quarantine threshold, and the liar is excluded whole-node within the
//! silence bound — with the audit's conservation check left on so forged
//! cells cannot hide in the loss accounting.

use crate::experiments::fault_tolerance::{fabric_limited_net, survivor_workload};
use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, write_results_atomic, Table};
use sirius_core::fault::FaultConfig;
use sirius_core::topology::NodeId;
use sirius_core::units::{Duration, Time};
use sirius_sim::{FaultInjector, FaultReport, SiriusSim, SiriusSimConfig};

/// One dead-chip point: `k` wavelengths gone from one bank, measured
/// under both repair granularities.
#[derive(Debug, Clone)]
pub struct BankPoint {
    /// Channels on the dead chip (the bank-size axis).
    pub k: u32,
    pub nodes: u32,
    pub uplinks: u32,
    /// Distinct nodes whose TX column the chip silenced (the AWGR image
    /// of the dead wavelengths), as *detected* — not echoed from the
    /// script.
    pub blast_nodes: u32,
    /// Correlated domains diagnosed (1 once `k` crosses the correlation
    /// threshold; 0 below it, where columns are just omitted singly).
    pub domains: u32,
    /// Epochs from fault onset to the last afflicted column's first
    /// suspicion (None: nothing detected).
    pub detect_epochs: Option<u64>,
    /// The silence bound detection must respect.
    pub bound_epochs: u64,
    /// `1 - k/(N*U)` measured from the adjusted schedule (link arm).
    pub cf_link: f64,
    pub ratio_link: f64,
    pub column_omissions: u64,
    pub exclusions_link: u64,
    /// `1 - blast/N` measured under the whole-node rule (node arm).
    pub cf_node: f64,
    pub ratio_node: f64,
    pub exclusions_node: u64,
}

impl BankPoint {
    /// Goodput retained by repairing the domain as columns, not nodes.
    pub fn advantage(&self) -> f64 {
        self.ratio_link - self.ratio_node
    }
}

/// One Byzantine point: `liars` racks forging cells and requests.
#[derive(Debug, Clone)]
pub struct ByzPoint {
    pub liars: u32,
    pub cells_forged: u64,
    pub cells_forged_dropped: u64,
    pub requests_forged: u64,
    /// Worst per-epoch forged count attributed to one node — the
    /// measured damage bound.
    pub max_forged_per_epoch: u64,
    /// Nodes the RX filter quarantined (must equal `liars`).
    pub quarantined: u32,
    /// Epochs from onset to the last quarantine (None: none fired).
    pub quarantine_epochs: Option<u64>,
    pub bound_epochs: u64,
    /// Honest-population goodput under attack / healthy.
    pub goodput_ratio: f64,
    pub audit_clean: bool,
}

impl ByzPoint {
    /// Fraction of counterfeits the RX filter caught (must be 1.0).
    pub fn drop_rate(&self) -> f64 {
        if self.cells_forged == 0 {
            1.0
        } else {
            self.cells_forged_dropped as f64 / self.cells_forged as f64
        }
    }
}

/// Bank-size axis: a single wavelength, a two-channel chip, and a chip
/// holding the whole grating (every port of one group dark on that
/// uplink). Only the last crosses the correlation threshold.
pub fn bank_sweep(grating_ports: u32) -> Vec<u32> {
    let mut ks = vec![1, 2, grating_ports];
    ks.dedup();
    ks.retain(|&k| k >= 1 && k <= grating_ports);
    ks
}

/// Byzantine-rack axis.
pub const BYZ_SWEEP: [u32; 2] = [1, 2];

/// The repair-policy arms of a bank point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    Healthy,
    Link,
    Node,
}

/// The dead chip lives in the *last* group so the survivor workload
/// (dense over the first server IDs) never sources or sinks traffic at
/// an afflicted rack; its TX columns still matter because every flow
/// relays through them under VLB.
fn bank_script(net_nodes: u32, g: u32, k: u32, seed: u64) -> FaultInjector {
    let group = net_nodes / g - 1;
    FaultInjector::new(seed).bank_failure(group as u16, 1, 0, k as u16, 0, u64::MAX)
}

/// One (k, arm) run: goodput over the saturated horizon plus the fault
/// report. Regenerates its own workload so each pool job is independent.
fn bank_arm(scale: Scale, seed: u64, k: u32, arm: Arm) -> (f64, Option<FaultReport>) {
    let net = fabric_limited_net(scale);
    let n = net.nodes as u32;
    let g = net.grating_ports as u32;
    let start = Time::ZERO + net.epoch() * 12; // routing settles first
    let servers = (n - g) * net.servers_per_node as u32;
    let wl = survivor_workload(&net, servers, servers as u64 * 40, seed, start);
    let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
    let horizon = Time::from_ps(last * 4 / 5);
    let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(seed);
    cfg.drain_timeout = Duration::from_ms(2);
    if arm == Arm::Node {
        cfg = cfg.with_column_escalation_fraction(0.0);
    }
    let mut sim = SiriusSim::new(cfg);
    if arm != Arm::Healthy {
        sim = sim.with_faults(bank_script(n, g, k, seed));
    }
    let m = sim.run(&wl);
    (
        m.goodput_within(horizon, servers as u64, net.server_rate),
        m.fault,
    )
}

/// One (liars, attacked?) run over the honest population, audit on so
/// the conservation check vouches that no counterfeit was double-counted
/// as goodput or hidden as loss.
fn byz_arm(
    scale: Scale,
    seed: u64,
    liars: u32,
    attacked: bool,
) -> (f64, Option<FaultReport>, bool) {
    let net = fabric_limited_net(scale);
    let n = net.nodes as u32;
    let servers = (n - liars) * net.servers_per_node as u32;
    let wl = survivor_workload(&net, servers, servers as u64 * 30, seed, Time::ZERO);
    let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
    let horizon = Time::from_ps(last * 4 / 5);
    let mut cfg = SiriusSimConfig::new(net.clone())
        .with_seed(seed)
        .with_audit(true);
    cfg.drain_timeout = Duration::from_ms(4);
    let mut sim = SiriusSim::new(cfg);
    if attacked {
        let mut inj = FaultInjector::new(seed);
        for i in 0..liars {
            inj = inj.byzantine(NodeId(n - 1 - i), 0.9, 8, 0, u64::MAX);
        }
        sim = sim.with_faults(inj);
    }
    let m = sim.run(&wl);
    let clean = m.audit.as_ref().map(|a| a.is_clean()).unwrap_or(false);
    (
        m.goodput_within(horizon, servers as u64, net.server_rate),
        m.fault,
        clean,
    )
}

/// The full evaluation.
#[derive(Debug, Clone)]
pub struct Points {
    pub bank: Vec<BankPoint>,
    pub byz: Vec<ByzPoint>,
}

pub fn run(scale: Scale, seed: u64, jobs: usize) -> Points {
    let net = fabric_limited_net(scale);
    let n = net.nodes as u32;
    let uplinks = net.total_uplinks() as u32;
    let ks = bank_sweep(net.grating_ports as u32);
    let bound = FaultConfig::default().silence_threshold + 1;

    // One pool for every independent run: 3 arms per bank size, then 2
    // arms per liar count; `Sweep` returns results in submission order
    // so fixed-size chunks reassemble the points.
    let mut sweep: Sweep<(f64, Option<FaultReport>, bool)> = Sweep::new();
    for &k in &ks {
        for arm in [Arm::Healthy, Arm::Link, Arm::Node] {
            sweep.push(
                format!("correlated_faults bank k={k} arm={arm:?}"),
                move || {
                    let (g, fr) = bank_arm(scale, seed, k, arm);
                    (g, fr, true)
                },
            );
        }
    }
    for &liars in &BYZ_SWEEP {
        for attacked in [false, true] {
            sweep.push(
                format!("correlated_faults byz liars={liars} attacked={attacked}"),
                move || byz_arm(scale, seed, liars, attacked),
            );
        }
    }
    let results = sweep.run(jobs);
    let (bank_res, byz_res) = results.split_at(ks.len() * 3);

    let bank = ks
        .iter()
        .zip(bank_res.chunks_exact(3))
        .map(|(&k, arms)| {
            let [(gh, _, _), (gl, fr_l, _), (gn, fr_n, _)] = arms else {
                unreachable!("three arms per k");
            };
            let fl = fr_l.as_ref().expect("link-arm fault report missing");
            let fn_ = fr_n.as_ref().expect("node-arm fault report missing");
            let mut afflicted: Vec<u32> = fl.links.iter().map(|l| l.node.0).collect();
            afflicted.sort_unstable();
            afflicted.dedup();
            BankPoint {
                k,
                nodes: n,
                uplinks,
                blast_nodes: afflicted.len() as u32,
                domains: fl.correlated_domains.len() as u32,
                detect_epochs: fl.links.iter().map(|l| l.first_suspected).max(),
                bound_epochs: bound,
                cf_link: fl.capacity_factor_end,
                ratio_link: gl / gh,
                column_omissions: fl.column_omissions,
                exclusions_link: fl.exclusions,
                cf_node: fn_.capacity_factor_end,
                ratio_node: gn / gh,
                exclusions_node: fn_.exclusions,
            }
        })
        .collect();

    let byz = BYZ_SWEEP
        .iter()
        .zip(byz_res.chunks_exact(2))
        .map(|(&liars, arms)| {
            let [(gh, _, _), (gb, fr, clean)] = arms else {
                unreachable!("two arms per liar count");
            };
            let fr = fr.as_ref().expect("byz fault report missing");
            ByzPoint {
                liars,
                cells_forged: fr.cells_forged,
                cells_forged_dropped: fr.cells_forged_dropped,
                requests_forged: fr.requests_forged,
                max_forged_per_epoch: fr.max_forged_per_epoch,
                quarantined: fr.byz_quarantined.len() as u32,
                quarantine_epochs: fr.byz_quarantined.iter().map(|q| q.quarantined_at).max(),
                bound_epochs: bound,
                goodput_ratio: gb / gh,
                audit_clean: *clean,
            }
        })
        .collect();

    Points { bank, byz }
}

/// Blast-radius accounting: `k` dead wavelengths become `blast` afflicted
/// racks, one domain, `k` column omissions — not `k` node exclusions.
pub fn blast_table(points: &[BankPoint]) -> Table {
    let mut t = Table::new(
        "correlated bank failure: blast radius vs repair granularity",
        &[
            "k",
            "blast_nodes",
            "domains",
            "column_omissions",
            "exclusions_link",
            "exclusions_node",
            "cf_link",
            "cf_node",
        ],
    );
    for p in points {
        t.row(vec![
            p.k.to_string(),
            p.blast_nodes.to_string(),
            p.domains.to_string(),
            p.column_omissions.to_string(),
            p.exclusions_link.to_string(),
            p.exclusions_node.to_string(),
            f(p.cf_link, 4),
            f(p.cf_node, 4),
        ]);
    }
    t
}

/// Detection latency for both fault classes against the silence bound.
pub fn detect_table(points: &Points) -> Table {
    let opt = |v: Option<u64>| v.map(|e| e.to_string()).unwrap_or_else(|| "missed".into());
    let mut t = Table::new(
        "correlated + Byzantine detection latency (epochs from onset)",
        &["fault", "size", "latency_epochs", "bound", "records"],
    );
    for p in &points.bank {
        t.row(vec![
            "bank".into(),
            p.k.to_string(),
            opt(p.detect_epochs),
            p.bound_epochs.to_string(),
            p.domains.to_string(),
        ]);
    }
    for p in &points.byz {
        t.row(vec![
            "byzantine".into(),
            p.liars.to_string(),
            opt(p.quarantine_epochs),
            p.bound_epochs.to_string(),
            p.quarantined.to_string(),
        ]);
    }
    t
}

/// Goodput under the correlated fault: the column arm should track
/// `1 - k/(N*U)`, the node arm pays `1 - blast/N`.
pub fn goodput_table(points: &[BankPoint]) -> Table {
    let mut t = Table::new(
        "correlated bank failure: goodput, column-granular vs whole-node",
        &[
            "k",
            "nodes",
            "uplinks",
            "cf_link",
            "ratio_link",
            "cf_node",
            "ratio_node",
            "advantage",
        ],
    );
    for p in points {
        t.row(vec![
            p.k.to_string(),
            p.nodes.to_string(),
            p.uplinks.to_string(),
            f(p.cf_link, 4),
            f(p.ratio_link, 4),
            f(p.cf_node, 4),
            f(p.ratio_node, 4),
            f(p.advantage(), 4),
        ]);
    }
    t
}

/// Byzantine damage bound: forged vs dropped, the per-epoch cap, and the
/// goodput the honest population kept.
pub fn byz_table(points: &[ByzPoint]) -> Table {
    let mut t = Table::new(
        "Byzantine data plane: forgery damage and quarantine",
        &[
            "liars",
            "cells_forged",
            "forged_dropped",
            "drop_rate",
            "requests_forged",
            "max_forged_per_epoch",
            "quarantined",
            "goodput_ratio",
            "audit_clean",
        ],
    );
    for p in points {
        t.row(vec![
            p.liars.to_string(),
            p.cells_forged.to_string(),
            p.cells_forged_dropped.to_string(),
            f(p.drop_rate(), 4),
            p.requests_forged.to_string(),
            p.max_forged_per_epoch.to_string(),
            p.quarantined.to_string(),
            f(p.goodput_ratio, 4),
            p.audit_clean.to_string(),
        ]);
    }
    t
}

/// Hand-rolled JSON (the workspace is offline — no serde), mirroring the
/// `BENCH_sim_throughput.json` convention: everything a CI gate needs to
/// assert the damage bounds without re-parsing CSVs.
pub fn to_json(points: &Points, scale: Scale) -> String {
    let opt = |v: Option<u64>| v.map(|e| e.to_string()).unwrap_or_else(|| "null".into());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"correlated_faults\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str(&format!(
        "  \"silence_bound_epochs\": {},\n",
        FaultConfig::default().silence_threshold + 1
    ));
    out.push_str("  \"bank\": [\n");
    for (i, p) in points.bank.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"k\": {}, \"nodes\": {}, \"uplinks\": {}, \"blast_nodes\": {}, \
             \"domains\": {}, \"detect_epochs\": {}, \"cf_link\": {:.6}, \
             \"ratio_link\": {:.6}, \"column_omissions\": {}, \"exclusions_link\": {}, \
             \"cf_node\": {:.6}, \"ratio_node\": {:.6}, \"exclusions_node\": {}, \
             \"advantage\": {:.6}}}{}\n",
            p.k,
            p.nodes,
            p.uplinks,
            p.blast_nodes,
            p.domains,
            opt(p.detect_epochs),
            p.cf_link,
            p.ratio_link,
            p.column_omissions,
            p.exclusions_link,
            p.cf_node,
            p.ratio_node,
            p.exclusions_node,
            p.advantage(),
            if i + 1 == points.bank.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"byzantine\": [\n");
    for (i, p) in points.byz.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"liars\": {}, \"cells_forged\": {}, \"cells_forged_dropped\": {}, \
             \"drop_rate\": {:.6}, \"requests_forged\": {}, \"max_forged_per_epoch\": {}, \
             \"quarantined\": {}, \"quarantine_epochs\": {}, \"goodput_ratio\": {:.6}, \
             \"audit_clean\": {}}}{}\n",
            p.liars,
            p.cells_forged,
            p.cells_forged_dropped,
            p.drop_rate(),
            p.requests_forged,
            p.max_forged_per_epoch,
            p.quarantined,
            opt(p.quarantine_epochs),
            p.goodput_ratio,
            p.audit_clean,
            if i + 1 == points.byz.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Emit the three CSVs, the Byzantine table, and the JSON artifact.
pub fn emit(points: &Points, scale: Scale) {
    blast_table(&points.bank).emit("correlated_blast");
    detect_table(points).emit("correlated_detect");
    goodput_table(&points.bank).emit("correlated_goodput");
    byz_table(&points.byz).emit("byzantine_damage");
    match write_results_atomic("BENCH_correlated_faults.json", &to_json(points, scale)) {
        Ok(path) => println!("[json] {}\n", path.display()),
        Err(e) => eprintln!("warning: could not write results/BENCH_correlated_faults.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dead chip's wavelength count and the Byzantine damage bound,
    /// end to end at smoke scale. One bank size (the whole grating, so a
    /// correlated domain fires) and one liar keep this test's runtime in
    /// line with its siblings; the full sweep is the bin's job.
    #[test]
    fn full_chip_is_one_domain_and_forgeries_are_contained() {
        let net = fabric_limited_net(Scale::Smoke);
        let g = net.grating_ports as u32;
        let (gh, _) = bank_arm(Scale::Smoke, 11, g, Arm::Healthy);
        let (gl, fr) = bank_arm(Scale::Smoke, 11, g, Arm::Link);
        let fr = fr.expect("fault report missing");
        assert_eq!(
            fr.correlated_domains.len(),
            1,
            "full chip must be one domain"
        );
        assert_eq!(fr.correlated_domains[0].nodes, g);
        assert_eq!(fr.exclusions, 0, "correlation must suppress exclusion");
        assert_eq!(fr.column_omissions as u32, g);
        let nu = (net.nodes * net.total_uplinks()) as f64;
        assert!((fr.capacity_factor_end - (1.0 - g as f64 / nu)).abs() < 1e-9);
        assert!(gl / gh >= fr.capacity_factor_end - 0.05);

        let (_, fr, clean) = byz_arm(Scale::Smoke, 11, 1, true);
        let fr = fr.expect("fault report missing");
        assert!(fr.cells_forged > 0, "liar never forged; test is vacuous");
        assert_eq!(fr.cells_forged_dropped, fr.cells_forged);
        assert_eq!(fr.byz_quarantined.len(), 1);
        assert!(clean, "audit must stay clean under forgery");
    }

    #[test]
    fn sweeps_and_json_are_well_formed() {
        let pts = Points {
            bank: vec![BankPoint {
                k: 2,
                nodes: 16,
                uplinks: 64,
                blast_nodes: 2,
                domains: 0,
                detect_epochs: Some(3),
                bound_epochs: 4,
                cf_link: 0.96875,
                ratio_link: 0.95,
                column_omissions: 2,
                exclusions_link: 0,
                cf_node: 0.875,
                ratio_node: 0.86,
                exclusions_node: 2,
            }],
            byz: vec![ByzPoint {
                liars: 1,
                cells_forged: 100,
                cells_forged_dropped: 100,
                requests_forged: 12,
                max_forged_per_epoch: 9,
                quarantined: 1,
                quarantine_epochs: Some(2),
                bound_epochs: 4,
                goodput_ratio: 0.97,
                audit_clean: true,
            }],
        };
        assert_eq!(bank_sweep(4), vec![1, 2, 4]);
        assert_eq!(bank_sweep(2), vec![1, 2]);
        assert_eq!(blast_table(&pts.bank).len(), 1);
        assert_eq!(detect_table(&pts).len(), 2);
        assert_eq!(goodput_table(&pts.bank).len(), 1);
        assert_eq!(byz_table(&pts.byz).len(), 1);
        let j = to_json(&pts, Scale::Smoke);
        assert!(j.contains("\"bench\": \"correlated_faults\""));
        assert!(j.contains("\"bank\": ["));
        assert!(j.contains("\"byzantine\": ["));
        assert!(j.contains("\"drop_rate\": 1.000000"));
        assert!(!j.contains("NaN") && !j.contains("inf"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
