//! §4.5 fault tolerance, measured end-to-end through the emergent
//! silence-detection pipeline: detection latency for scripted crashes,
//! goodput degradation vs the `1 - failed/N` capacity line, and grey-link
//! localization accuracy across receive-power levels.
//!
//! All runs use a *fabric-limited* variant of the scale's network
//! (`uplink_factor` 1.0, two servers per rack sized so fabric TX exactly
//! balances NIC injection across the two VLB hops): only when the optical
//! fabric is the binding constraint does dead-slot capacity loss show up
//! as goodput loss instead of vanishing into uplink headroom.

use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, Table};
use sirius_core::config::SiriusConfig;
use sirius_core::fault::FaultConfig;
use sirius_core::topology::NodeId;
use sirius_core::units::{Duration, Rate, Time};
use sirius_optics::ber::Modulation;
use sirius_sim::{cell_drop_probability, FaultEvent, FaultInjector, SiriusSim, SiriusSimConfig};
use sirius_workload::{Flow, Pareto, Pattern, WorkloadSpec};

/// Receive-power sweep for the grey-link localization curve, bracketing
/// the KP4 FEC waterfall (per-cell drop ~1e-15 at -8 dBm, ~1 by -10): a
/// clean column, two points on the cliff, and a dead column.
pub const GREY_RX_DBM: [f64; 4] = [-8.0, -8.75, -9.0, -12.0];

/// Fabric-limited network at this scale's rack count: 2 servers per rack
/// with `server_rate` chosen so `2 x rate x 2 VLB hops = base_uplinks x
/// channel_rate`.
pub fn fabric_limited_net(scale: Scale) -> SiriusConfig {
    let base = scale.network();
    let mut c = SiriusConfig::scaled(base.nodes, base.grating_ports);
    c.uplink_factor = 1.0;
    c.servers_per_node = 2;
    c.server_rate = Rate::from_bps(c.channel_rate.as_bps() * c.base_uplinks as u64 / 4);
    c
}

/// Saturation workload over the first `servers` server IDs with all
/// arrivals shifted past `start`: crashing the *last* racks leaves a
/// steady-state run among the survivors only.
pub(crate) fn survivor_workload(
    net: &SiriusConfig,
    servers: u32,
    flows: u64,
    seed: u64,
    start: Time,
) -> Vec<Flow> {
    let mut wl = WorkloadSpec {
        servers,
        server_rate: net.server_rate,
        load: 1.0,
        sizes: Pareto::paper_default().truncated(1e5),
        flows,
        pattern: Pattern::Uniform,
        seed,
    }
    .generate();
    for fl in &mut wl {
        fl.arrival += start.since(Time::ZERO);
    }
    wl
}

/// One scripted crash and what the silence detectors made of it.
#[derive(Debug, Clone)]
pub struct DetectionPoint {
    pub node: u32,
    pub fail_epoch: u64,
    /// Epochs from ground-truth death to first suspicion (None: missed).
    pub latency_epochs: Option<u64>,
    /// Epochs from suspicion to routing exclusion taking effect.
    pub exclusion_gap: Option<u64>,
    /// The §4.5 bound every latency must respect.
    pub bound_epochs: u64,
}

/// Four staggered crashes, detected purely from slot-level silence.
pub fn detection_points(scale: Scale, seed: u64) -> Vec<DetectionPoint> {
    let net = fabric_limited_net(scale);
    let n = net.nodes as u32;
    let victims = 4u32.min(n / 4);
    let servers = (n - victims) * net.servers_per_node as u32;
    let wl = survivor_workload(&net, servers, servers as u64 * 30, seed, Time::ZERO);
    let mut inj = FaultInjector::new(seed);
    for k in 0..victims {
        inj.push(FaultEvent::Crash {
            node: NodeId(n - 1 - k),
            epoch: 5 + 10 * k as u64,
        });
    }
    let mut cfg = SiriusSimConfig::new(net).with_seed(seed).with_audit(true);
    cfg.drain_timeout = Duration::from_us(300);
    let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
    let bound = FaultConfig::default().silence_threshold + 1;
    let fr = m.fault.expect("fault report missing");
    fr.failures
        .iter()
        .map(|rec| DetectionPoint {
            node: rec.node.0,
            fail_epoch: rec.fail_epoch,
            latency_epochs: rec.detection_epochs(),
            exclusion_gap: rec.excluded_at.zip(rec.first_suspected).map(|(e, s)| e - s),
            bound_epochs: bound,
        })
        .collect()
}

/// Saturation goodput with `failed` of `nodes` racks dark, against the
/// `capacity_factor = 1 - failed/N` line.
#[derive(Debug, Clone)]
pub struct GoodputPoint {
    pub failed: u32,
    pub nodes: u32,
    pub capacity_factor: f64,
    /// Degraded / healthy goodput over the same saturated horizon.
    pub goodput_ratio: f64,
}

/// Goodput-vs-failed-nodes sweep. Each point is a healthy/degraded run
/// pair over the survivor population only, measured strictly inside the
/// arrival span so the ratio means capacity, not drain behavior.
pub fn goodput_points(scale: Scale, seed: u64, failed_counts: &[u32]) -> Vec<GoodputPoint> {
    let net = fabric_limited_net(scale);
    let n = net.nodes as u32;
    let start = Time::ZERO + net.epoch() * 12; // routing settles first
    let mut out = Vec::new();
    for &failed in failed_counts {
        let servers = (n - failed) * net.servers_per_node as u32;
        let wl = survivor_workload(&net, servers, servers as u64 * 60, seed, start);
        let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
        let horizon = Time::from_ps(last * 4 / 5);
        let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(seed);
        cfg.drain_timeout = Duration::from_ms(2);

        let healthy = SiriusSim::new(cfg.clone()).run(&wl);
        let mut inj = FaultInjector::new(seed);
        for k in 0..failed {
            inj.push(FaultEvent::Crash {
                node: NodeId(n - 1 - k),
                epoch: 0,
            });
        }
        let degraded = SiriusSim::new(cfg).with_faults(inj).run(&wl);

        let cf = degraded.fault.as_ref().unwrap().capacity_factor_end;
        let g =
            |m: &sirius_sim::RunMetrics| m.goodput_within(horizon, servers as u64, net.server_rate);
        out.push(GoodputPoint {
            failed,
            nodes: n,
            capacity_factor: cf,
            goodput_ratio: g(&degraded) / g(&healthy),
        });
    }
    out
}

/// One grey-link run: a single TX column degraded to `rx_dbm`, and
/// whether the per-column silence detector localized it.
#[derive(Debug, Clone)]
pub struct GreyPoint {
    pub rx_dbm: f64,
    /// Per-cell drop probability the BER model assigns at this power.
    pub drop_prob: f64,
    pub cells_lost: u64,
    pub localized: bool,
    /// Whole-node exclusions the dead column provoked (zero when the
    /// link-granular repair path confines it to its column).
    pub exclusions: u64,
    pub readmissions: u64,
    pub audit_clean: bool,
}

/// Grey-link localization accuracy across receive powers: marginal links
/// lose little and stay invisible; a dead column must be localized to
/// exactly its (node, uplink) without permanently excluding the node.
pub fn grey_points(scale: Scale, seed: u64, rx_dbm: &[f64]) -> Vec<GreyPoint> {
    let net = fabric_limited_net(scale);
    let servers = net.total_servers() as u32;
    let wl = survivor_workload(&net, servers, servers as u64 * 25, seed, Time::ZERO);
    rx_dbm
        .iter()
        .map(|&dbm| {
            let inj = FaultInjector::new(seed).grey_link_from_ber(
                NodeId(7),
                2,
                dbm,
                Modulation::Pam4_50,
                net.cell_bytes,
                4,
                300,
            );
            let mut cfg = SiriusSimConfig::new(net.clone())
                .with_seed(seed)
                .with_audit(true);
            cfg.drain_timeout = Duration::from_us(300);
            let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
            let fr = m.fault.expect("fault report missing");
            GreyPoint {
                rx_dbm: dbm,
                drop_prob: cell_drop_probability(dbm, Modulation::Pam4_50, net.cell_bytes),
                cells_lost: fr.cells_lost_grey,
                localized: fr.grey_links_localized == fr.grey_links_declared,
                exclusions: fr.exclusions,
                readmissions: fr.readmissions,
                audit_clean: m.audit.map(|a| a.is_clean()).unwrap_or(false),
            }
        })
        .collect()
}

/// The full §4.5 evaluation.
pub struct Points {
    pub detection: Vec<DetectionPoint>,
    pub goodput: Vec<GoodputPoint>,
    pub grey: Vec<GreyPoint>,
}

/// Failed-node sweep proportional to the rack count.
pub fn failed_sweep(nodes: u32) -> Vec<u32> {
    let mut ks = vec![1, nodes / 8, nodes / 2];
    ks.dedup();
    ks
}

pub fn run(scale: Scale, seed: u64, jobs: usize) -> Points {
    // The three sub-evaluations share one pool: the detection run, each
    // failed-count pair, and each receive-power run are all independent
    // jobs, so workers drain the whole §4.5 suite instead of hitting a
    // barrier between sub-experiments.
    enum Out {
        Detection(Vec<DetectionPoint>),
        Goodput(Vec<GoodputPoint>),
        Grey(Vec<GreyPoint>),
    }
    let n = fabric_limited_net(scale).nodes as u32;
    let mut sweep: Sweep<Out> = Sweep::new();
    sweep.push("fault_tolerance detection", move || {
        Out::Detection(detection_points(scale, seed))
    });
    for k in failed_sweep(n) {
        sweep.push(format!("fault_tolerance goodput failed={k}"), move || {
            Out::Goodput(goodput_points(scale, seed, &[k]))
        });
    }
    for &dbm in &GREY_RX_DBM {
        sweep.push(format!("fault_tolerance grey rx={dbm}dBm"), move || {
            Out::Grey(grey_points(scale, seed, &[dbm]))
        });
    }
    let mut points = Points {
        detection: Vec::new(),
        goodput: Vec::new(),
        grey: Vec::new(),
    };
    for out in sweep.run(jobs) {
        match out {
            Out::Detection(d) => points.detection.extend(d),
            Out::Goodput(g) => points.goodput.extend(g),
            Out::Grey(g) => points.grey.extend(g),
        }
    }
    points
}

pub fn tables(points: &Points) -> (Table, Table, Table) {
    let mut det = Table::new(
        "§4.5 crash detection latency (emergent, slot-level silence)",
        &[
            "node",
            "fail_epoch",
            "latency_epochs",
            "bound",
            "exclusion_gap",
        ],
    );
    for p in &points.detection {
        det.row(vec![
            p.node.to_string(),
            p.fail_epoch.to_string(),
            p.latency_epochs
                .map(|l| l.to_string())
                .unwrap_or_else(|| "missed".into()),
            p.bound_epochs.to_string(),
            p.exclusion_gap
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    let mut gp = Table::new(
        "§4.5 saturation goodput vs failed racks (fabric-limited)",
        &["failed", "nodes", "capacity_factor", "goodput_ratio"],
    );
    for p in &points.goodput {
        gp.row(vec![
            p.failed.to_string(),
            p.nodes.to_string(),
            f(p.capacity_factor, 4),
            f(p.goodput_ratio, 4),
        ]);
    }
    let mut grey = Table::new(
        "§4.5 grey-link localization vs receive power (one TX column)",
        &[
            "rx_dbm",
            "drop_prob",
            "cells_lost",
            "localized",
            "exclusions",
            "readmissions",
            "audit_clean",
        ],
    );
    for p in &points.grey {
        grey.row(vec![
            f(p.rx_dbm, 1),
            format!("{:.2e}", p.drop_prob),
            p.cells_lost.to_string(),
            p.localized.to_string(),
            p.exclusions.to_string(),
            p.readmissions.to_string(),
            p.audit_clean.to_string(),
        ]);
    }
    (det, gp, grey)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_latency_is_bounded_at_smoke_scale() {
        let pts = detection_points(Scale::Smoke, 11);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            let lat = p.latency_epochs.expect("crash missed");
            assert!(lat <= p.bound_epochs, "node {}: {lat} epochs", p.node);
            assert_eq!(p.exclusion_gap, Some(1));
        }
    }

    #[test]
    fn goodput_tracks_the_capacity_line() {
        let pts = goodput_points(Scale::Smoke, 11, &[2]);
        let p = &pts[0];
        assert!((p.capacity_factor - (1.0 - 2.0 / p.nodes as f64)).abs() < 1e-9);
        assert!(
            (p.goodput_ratio - p.capacity_factor).abs() <= 0.05,
            "ratio {} vs capacity {}",
            p.goodput_ratio,
            p.capacity_factor
        );
    }

    #[test]
    fn dead_column_is_localized_and_marginal_column_is_invisible() {
        let pts = grey_points(Scale::Smoke, 11, &[-8.0, -12.0]);
        let marginal = &pts[0];
        let dead = &pts[1];
        assert!(marginal.drop_prob < 1e-6, "-8 dBm should be FEC-clean");
        assert!(dead.localized, "-12 dBm column not localized");
        assert!(dead.cells_lost > 0);
        assert_eq!(dead.exclusions, dead.readmissions, "exclusion not vetoed");
        assert!(dead.audit_clean && marginal.audit_clean);
        let (t1, t2, t3) = tables(&Points {
            detection: vec![],
            goodput: vec![],
            grey: pts,
        });
        assert!(t1.is_empty() && t2.is_empty());
        assert_eq!(t3.len(), 2);
    }
}
