//! Simulator throughput: wall-clock cells/sec and epochs/sec per CC mode.
//!
//! This measures the *simulator*, not the network: how many
//! final-destination cell deliveries and schedule epochs the slot engine
//! retires per host second. It is the bench trajectory for every hot-path
//! change (arena queues, plane split, observer elision) — the ROADMAP
//! north star says "as fast as the hardware allows", and this is the
//! number that says whether a refactor moved toward it.
//!
//! Besides the usual CSV, the harness emits
//! `results/BENCH_sim_throughput.json` with the measured points plus the
//! recorded pre-refactor baseline, so CI artifacts carry the speedup
//! ratio itself.

use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, write_results_atomic, Table};
use sirius_sim::{CcMode, SiriusSim};

/// The three congestion-control modes, with their CSV/JSON names.
pub const MODES: [(CcMode, &str); 3] = [
    (CcMode::Protocol, "protocol"),
    (CcMode::Ideal, "ideal"),
    (CcMode::Greedy, "greedy"),
];

/// Pre-refactor Protocol-mode throughput at paper_sim scale (cells/sec),
/// measured at commit a34a54c with this same harness (`--full`, seed 1,
/// load 0.5, 20000 flows) — the denominator of the ≥2× acceptance bar.
/// See EXPERIMENTS.md, "Simulator throughput".
pub const BASELINE_PAPER_PROTOCOL_CELLS_PER_SEC: f64 = 625_101.0;

/// One (mode, shards, scale) throughput measurement.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    pub mode: &'static str,
    /// Slot-engine worker shards the run used (1 = serial engine).
    pub shards: usize,
    pub nodes: u32,
    pub flows: u64,
    pub cells: u64,
    pub epochs: u64,
    pub wall_secs: f64,
    /// Per-plane wall breakdown (`RunMetrics::{tx,deliver,merge}_secs`,
    /// recorded with `plane_timing` on): TX phase, arrival processing
    /// (the parallel region on sharded runs), and the serial merge
    /// epilogue. On the sharded leg `deliver_secs` is the partitioned
    /// phase — no longer folded into a serial merge — so the serial
    /// fraction is measurable before/after.
    pub tx_secs: f64,
    pub deliver_secs: f64,
    pub merge_secs: f64,
    /// Delivered-cell run digest: sharded points must match their serial
    /// sibling bit-for-bit (`ci.sh bench-smoke` compares them).
    pub digest: u64,
}

impl ThroughputPoint {
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cells as f64 / self.wall_secs
        } else {
            0.0
        }
    }
    pub fn epochs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.epochs as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Flows per run: enough simulated work that the wall-clock measurement
/// is stable (seconds at paper scale, not milliseconds), small enough
/// that three modes fit in an `xp` sweep. Deliberately *not*
/// `Scale::flows()` — throughput saturates long before 200k flows.
pub fn flow_count(scale: Scale) -> u64 {
    match scale {
        Scale::Smoke => 500,
        Scale::Quick => 2_000,
        Scale::Paper => 20_000,
    }
}

/// One mode's audited-off release-path run; regenerates its workload.
/// Load 0.5: moderate occupancy, the run drains, and the cell mix
/// exercises both the relay and direct paths. `shards` is the
/// slot-engine worker count (1 = serial; Ideal mode runs serial
/// regardless, so its sharded point measures the fallback).
pub fn run_mode(
    scale: Scale,
    seed: u64,
    mode: CcMode,
    name: &'static str,
    shards: usize,
) -> ThroughputPoint {
    let net = scale.network();
    let mut spec = scale.workload(0.5, seed);
    spec.flows = flow_count(scale);
    let wl = spec.generate();
    let cfg = scale
        .sim_config(net.clone(), &wl, seed)
        .with_mode(mode)
        .with_shards(shards)
        // Throughput measures the release path: audit off explicitly so
        // debug-build smoke tests measure the same configuration CI
        // release runs do.
        .with_audit(false)
        // Per-plane breakdown: the clock reads cost well under 1% of a
        // slot, and this is the harness the breakdown exists for.
        .with_plane_timing(true);
    let m = SiriusSim::new(cfg).run(&wl);
    ThroughputPoint {
        mode: name,
        shards,
        nodes: net.nodes as u32,
        flows: wl.len() as u64,
        cells: m.cells_delivered,
        epochs: m.epochs_simulated,
        wall_secs: m.wall_secs,
        tx_secs: m.tx_secs,
        deliver_secs: m.deliver_secs,
        merge_secs: m.merge_secs,
        digest: m.digest,
    }
}

/// One run per mode over the same (regenerated) workload.
///
/// `jobs` parallelizes *across* the three modes — fine for smoke coverage
/// of the harness path, but concurrent modes contend for cores and
/// inflate each other's wall clock, so the longitudinal series (the
/// paper-scale best-of-3 in `BENCH_sim_throughput.json`) is always
/// measured at `jobs = 1`; the `sim_throughput` bin enforces that.
pub fn run(scale: Scale, seed: u64, jobs: usize, shards: usize) -> Vec<ThroughputPoint> {
    let mut sweep = Sweep::new();
    for &(mode, name) in &MODES {
        sweep.push(
            format!("sim_throughput mode={name} shards={shards}"),
            move || run_mode(scale, seed, mode, name, shards),
        );
    }
    sweep.run(jobs)
}

/// Best-of-`repeats` measurement per mode. Wall-clock noise is one-sided
/// (preemption, frequency ramps — nothing makes code run faster than it
/// is), so the minimum wall time per mode is the closest observation of
/// the engine's true cost. The simulated run is identical every repeat
/// (same seed), so only the clock varies.
pub fn run_best(
    scale: Scale,
    seed: u64,
    repeats: u32,
    jobs: usize,
    shards: usize,
) -> Vec<ThroughputPoint> {
    let mut best = run(scale, seed, jobs, shards);
    for _ in 1..repeats {
        for (b, p) in best.iter_mut().zip(run(scale, seed, jobs, shards)) {
            if p.wall_secs < b.wall_secs {
                *b = p;
            }
        }
    }
    best
}

pub fn table(points: &[ThroughputPoint]) -> Table {
    let mut t = Table::new(
        "simulator throughput (wall-clock)",
        &[
            "mode",
            "shards",
            "nodes",
            "flows",
            "cells",
            "epochs",
            "wall_s",
            "tx_s",
            "deliver_s",
            "merge_s",
            "cells_per_s",
            "epochs_per_s",
            "digest",
        ],
    );
    for p in points {
        t.row(vec![
            p.mode.to_string(),
            p.shards.to_string(),
            p.nodes.to_string(),
            p.flows.to_string(),
            p.cells.to_string(),
            p.epochs.to_string(),
            f(p.wall_secs, 3),
            f(p.tx_secs, 3),
            f(p.deliver_secs, 3),
            f(p.merge_secs, 3),
            f(p.cells_per_sec(), 0),
            f(p.epochs_per_sec(), 0),
            format!("{:016x}", p.digest),
        ]);
    }
    t
}

/// Hand-rolled JSON (the workspace is offline — no serde): the measured
/// points, the recorded pre-refactor baseline, the Protocol speedup
/// against it when the run is at paper scale (always taken from the
/// serial point so the longitudinal series stays comparable), and the
/// sharded-vs-serial Protocol ratio when both shard counts were
/// measured. `host_parallelism` makes the artifact self-describing: a
/// sharded run on a 1-core container is honest about why it shows no
/// speedup.
pub fn to_json(points: &[ThroughputPoint], scale: Scale) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"sim_throughput\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"baseline_paper_protocol_cells_per_sec\": {:.0},\n",
        BASELINE_PAPER_PROTOCOL_CELLS_PER_SEC
    ));
    let serial_protocol = points
        .iter()
        .find(|p| p.mode == "protocol" && p.shards == 1);
    let speedup = serial_protocol
        .filter(|_| scale == Scale::Paper && BASELINE_PAPER_PROTOCOL_CELLS_PER_SEC > 0.0)
        .map(|p| p.cells_per_sec() / BASELINE_PAPER_PROTOCOL_CELLS_PER_SEC);
    match speedup {
        Some(s) => out.push_str(&format!("  \"protocol_speedup_vs_baseline\": {s:.3},\n")),
        None => out.push_str("  \"protocol_speedup_vs_baseline\": null,\n"),
    }
    let sharded_protocol = points.iter().find(|p| p.mode == "protocol" && p.shards > 1);
    let sharded_speedup = match (serial_protocol, sharded_protocol) {
        (Some(serial), Some(sharded)) if serial.cells_per_sec() > 0.0 => {
            Some(sharded.cells_per_sec() / serial.cells_per_sec())
        }
        _ => None,
    };
    match sharded_speedup {
        Some(s) => out.push_str(&format!(
            "  \"protocol_sharded_speedup_vs_serial\": {s:.3},\n"
        )),
        None => out.push_str("  \"protocol_sharded_speedup_vs_serial\": null,\n"),
    }
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"shards\": {}, \"nodes\": {}, \"flows\": {}, \
             \"cells\": {}, \"epochs\": {}, \"wall_secs\": {:.4}, \"tx_secs\": {:.4}, \
             \"deliver_secs\": {:.4}, \"merge_secs\": {:.4}, \"cells_per_sec\": {:.0}, \
             \"epochs_per_sec\": {:.0}, \"digest\": \"{:016x}\"}}{}\n",
            p.mode,
            p.shards,
            p.nodes,
            p.flows,
            p.cells,
            p.epochs,
            p.wall_secs,
            p.tx_secs,
            p.deliver_secs,
            p.merge_secs,
            p.cells_per_sec(),
            p.epochs_per_sec(),
            p.digest,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `results/BENCH_sim_throughput.json` atomically (same convention
/// as `Table::emit` for CSVs).
pub fn emit_json(points: &[ThroughputPoint], scale: Scale) {
    match write_results_atomic("BENCH_sim_throughput.json", &to_json(points, scale)) {
        Ok(path) => println!("[json] {}\n", path.display()),
        Err(e) => eprintln!("warning: could not write results/BENCH_sim_throughput.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_all_modes_and_counts_work() {
        let pts = run(Scale::Smoke, 3, 1, 1);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert_eq!(p.shards, 1);
            assert!(p.cells > 0, "{}: no cells delivered", p.mode);
            assert!(p.epochs > 0, "{}: no epochs simulated", p.mode);
            assert!(p.wall_secs > 0.0, "{}: wall clock did not advance", p.mode);
            assert!(p.cells_per_sec() > 0.0);
            assert!(p.epochs_per_sec() > 0.0);
            // Plane timing is always on in the harness: both the TX and
            // the deliver leg must carry a non-zero reading even on a
            // 1-core host (the planes run, just not in parallel).
            assert!(p.tx_secs > 0.0, "{}: TX plane untimed", p.mode);
            assert!(p.deliver_secs > 0.0, "{}: deliver plane untimed", p.mode);
            assert!(p.merge_secs >= 0.0);
            assert!(
                p.tx_secs + p.deliver_secs + p.merge_secs <= p.wall_secs,
                "{}: plane breakdown exceeds total wall",
                p.mode
            );
        }
        assert_eq!(table(&pts).len(), 3);
    }

    /// The shards axis: a sharded run retires the same work with the same
    /// digest as its serial sibling (the full matrix lives in
    /// `tests/determinism.rs`; this pins the harness plumbing).
    #[test]
    fn sharded_point_matches_serial_digest() {
        let serial = run_mode(Scale::Smoke, 3, CcMode::Protocol, "protocol", 1);
        let sharded = run_mode(Scale::Smoke, 3, CcMode::Protocol, "protocol", 2);
        assert_eq!(sharded.shards, 2);
        assert_eq!(serial.digest, sharded.digest, "sharded digest diverged");
        assert_eq!(serial.cells, sharded.cells);
        assert_eq!(serial.epochs, sharded.epochs);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mk = |shards: usize, wall: f64| ThroughputPoint {
            mode: "protocol",
            shards,
            nodes: 16,
            flows: 10,
            cells: 1000,
            epochs: 50,
            wall_secs: wall,
            tx_secs: wall * 0.5,
            deliver_secs: wall * 0.25,
            merge_secs: wall * 0.125,
            digest: 0xabcd,
        };
        let pts = vec![mk(1, 0.5), mk(2, 0.25)];
        let j = to_json(&pts, Scale::Smoke);
        assert!(j.contains("\"bench\": \"sim_throughput\""));
        assert!(j.contains("\"cells_per_sec\": 2000"));
        assert!(j.contains("\"tx_secs\": 0.2500"));
        assert!(j.contains("\"deliver_secs\": 0.1250"));
        assert!(j.contains("\"merge_secs\": 0.0625"));
        assert!(j.contains("\"scale\": \"Smoke\""));
        assert!(j.contains("\"host_parallelism\":"));
        assert!(j.contains("\"shards\": 2"));
        assert!(j.contains("\"digest\": \"000000000000abcd\""));
        // Smoke scale never claims a paper-scale speedup...
        assert!(j.contains("\"protocol_speedup_vs_baseline\": null"));
        // ...but the sharded-vs-serial ratio is scale-independent.
        assert!(j.contains("\"protocol_sharded_speedup_vs_serial\": 2.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
