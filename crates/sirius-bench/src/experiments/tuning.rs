//! The §3.2 laser-tuning table: dampened DSDBR statistics over all 12,432
//! wavelength pairs, the undampened and stock drives, and the fabricated
//! chip — plus the §4.5 pipelined-bank sizing rule.

use crate::table::{f, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sirius_core::units::Duration;
use sirius_optics::laser::standard::{DriveMode, DsdbrLaser};
use sirius_optics::laser::{FixedLaserBank, TunableLaserBank, TunableSource};

pub fn tuning_table(seed: u64) -> Table {
    let mut t = Table::new(
        "S3.2/S6: tuning latency by laser design (median/worst over all pairs)",
        &["design", "wavelengths", "pairs", "median", "worst"],
    );
    let sources: Vec<(&str, Box<dyn TunableSource>)> = vec![
        (
            "DSDBR stock drive",
            Box::new(DsdbrLaser::new(112, DriveMode::Stock)),
        ),
        (
            "DSDBR single-step",
            Box::new(DsdbrLaser::new(112, DriveMode::SingleStep)),
        ),
        (
            "DSDBR dampened (v1)",
            Box::new(DsdbrLaser::new(112, DriveMode::Dampened)),
        ),
        (
            "fixed bank + SOA (v2 chip)",
            Box::new(FixedLaserBank::paper_chip(&mut SmallRng::seed_from_u64(
                seed,
            ))),
        ),
        (
            "pipelined tunable bank",
            Box::new(TunableLaserBank::paper_bank()),
        ),
    ];
    for (name, src) in sources {
        let n = src.wavelengths();
        t.row(vec![
            name.to_string(),
            n.to_string(),
            (n * (n - 1)).to_string(),
            format!("{}", src.median_tuning_latency()),
            format!("{}", src.worst_tuning_latency()),
        ]);
    }
    t
}

/// The §4.5 bank-sizing rule across slot lengths.
pub fn bank_sizing_table() -> Table {
    let worst = DsdbrLaser::paper_prototype().worst_tuning_latency();
    let mut t = Table::new(
        "S4.5: tunable-laser bank size needed to hide a 92 ns worst-case tune",
        &["slot_ns", "working_lasers", "with_spare"],
    );
    for slot_ns in [38u64, 50, 100, 200] {
        let k = TunableLaserBank::required_working(worst, Duration::from_ns(slot_ns));
        t.row(vec![
            slot_ns.to_string(),
            k.to_string(),
            (k + 1).to_string(),
        ]);
    }
    t
}

/// CDF of dampened DSDBR settle times over all ordered pairs.
pub fn dsdbr_cdf_table() -> Table {
    let l = DsdbrLaser::paper_prototype();
    let mut all: Vec<f64> = Vec::new();
    for i in 0..112 {
        for j in 0..112 {
            if i != j {
                all.push(
                    l.tuning_latency(i, j)
                        .expect("grid-internal channel")
                        .as_ns_f64(),
                );
            }
        }
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut t = Table::new(
        "S3.2: CDF of dampened DSDBR settle time over 12,432 pairs",
        &["percentile", "settle_ns"],
    );
    for p in [1, 10, 25, 50, 75, 90, 99, 100] {
        let idx = ((p as f64 / 100.0) * all.len() as f64).ceil() as usize - 1;
        t.row(vec![p.to_string(), f(all[idx.min(all.len() - 1)], 1)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_table_reproduces_paper_numbers() {
        let t = tuning_table(1);
        let csv = t.to_csv();
        // Dampened DSDBR: 14 ns median / 92 ns worst over 12,432 pairs.
        let damp = csv.lines().find(|l| l.contains("dampened")).unwrap();
        assert!(damp.contains("12432"));
        assert!(damp.contains("92.000ns"), "{damp}");
        // Chip: sub-ns worst case.
        let chip = csv.lines().find(|l| l.contains("fixed bank")).unwrap();
        assert!(chip.contains("912ps"), "{chip}");
    }

    #[test]
    fn bank_rule_matches_section45() {
        let t = bank_sizing_table();
        let csv = t.to_csv();
        // 100 ns slot -> 2 working lasers (+1 spare = 3).
        assert!(csv.lines().any(|l| l.starts_with("100,2,3")), "{csv}");
    }

    #[test]
    fn dsdbr_cdf_median_is_14ns() {
        let t = dsdbr_cdf_table();
        let row = t
            .to_csv()
            .lines()
            .find(|l| l.starts_with("50,"))
            .unwrap()
            .to_string();
        let v: f64 = row.split(',').nth(1).unwrap().parse().unwrap();
        assert!((v - 14.0).abs() < 1.0, "median {v} ns");
    }
}
