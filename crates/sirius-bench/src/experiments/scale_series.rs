//! Scale-out series: nodes × flows sweep on the streaming engine.
//!
//! Every other experiment holds the deployment at the paper's 128 racks
//! and materializes its whole workload up front. This series is the
//! memory-boundedness trajectory instead: N ∈ {128 .. 4096} nodes and
//! flow counts into the millions, each point run through
//! [`SiriusSim::run_streaming`] so flow state is admitted lazily and
//! evicted on completion. Two properties are gated, not just reported:
//!
//! * `resident_flows_max` (the engine's in-flight flow high-water mark)
//!   stays far below the total flow count — [`resident_bound`];
//! * peak RSS grows sub-linearly in total flows across a same-geometry
//!   pair of points — the smoking gun for an accidental O(flows) or
//!   O(N²·slots) structure creeping back in.
//!
//! Each point also reports p50/p99 FCT from the engine's streaming
//! histogram ([`sirius_sim::FctHistogram`]) — flow records are evicted
//! on completion, so a log-bucketed O(1)-memory fold at eviction time is
//! the only FCT signal a memory-bounded run can keep.
//!
//! Points run ascending so the process-monotonic `VmHWM` reading after
//! each point is an honest upper bound for that point. The JSON artifact
//! (`results/BENCH_scale_series.json`) carries the gate verdicts so
//! `ci.sh scale-smoke` greps them instead of re-deriving thresholds in
//! shell.

use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, write_results_atomic, Table};
use sirius_core::config::SiriusConfig;
use sirius_core::units::{Duration, Rate};
use sirius_sim::{SiriusSim, SiriusSimConfig};
use sirius_workload::{Pareto, Pattern, WorkloadSpec};

/// Normalized offered load for every point: moderate occupancy so runs
/// drain and the resident-flow bound is a property of the engine, not of
/// an overload backlog.
pub const LOAD: f64 = 0.5;

/// One (nodes, grating, flows) geometry in the series.
#[derive(Debug, Clone, Copy)]
pub struct ScaleGeom {
    /// Racks on the optical core.
    pub nodes: usize,
    /// Grating ports (= epoch slots); `nodes / grating` groups.
    pub grating: usize,
    /// Flows streamed through the run.
    pub flows: u64,
}

/// The sweep per scale: nodes non-decreasing, ending in a
/// *same-geometry pair* whose flow counts differ 8×. That pair is what
/// the RSS gate compares — between different node counts, RSS is
/// dominated by per-node fabric state (which grows ~N² and has nothing
/// to do with flow handling), so only a fixed-geometry pair isolates
/// the flow axis. Paper ends at 4096 nodes / 2M flows — millions of
/// flows on a machine that could never hold them all materialized.
pub fn series(scale: Scale) -> Vec<ScaleGeom> {
    let g = |nodes, grating, flows| ScaleGeom {
        nodes,
        grating,
        flows,
    };
    match scale {
        Scale::Smoke => vec![g(128, 16, 8_000), g(512, 32, 8_000), g(512, 32, 64_000)],
        Scale::Quick => vec![
            g(128, 16, 8_000),
            g(512, 32, 64_000),
            g(1024, 32, 32_000),
            g(1024, 32, 256_000),
        ],
        Scale::Paper => vec![
            g(128, 16, 32_000),
            g(512, 32, 256_000),
            g(1024, 32, 512_000),
            g(2048, 64, 1_024_000),
            g(4096, 64, 512_000),
            g(4096, 64, 2_048_000),
        ],
    }
}

/// Memory-class jobs cap for this sweep: the N=4096 point holds
/// O(N·uplinks) node state per concurrent run, so the Paper series must
/// not fan out across sweep workers at all, and even the smaller series
/// gains nothing past two (points are serialized by the RSS protocol
/// anyway — see [`run_points`]).
pub fn jobs_cap(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 1,
        _ => 2,
    }
}

/// Residency gate: in-flight flow state must stay under a quarter of the
/// total flow count (floored so tiny runs aren't gated on noise). A
/// streaming engine at load 0.5 sits orders of magnitude below this; a
/// regression to keep-everything-resident sits at ~`flows` and fails.
pub fn resident_bound(flows: u64) -> u64 {
    (flows / 4).max(4096)
}

/// Peak RSS of this process (`VmHWM` from `/proc/self/status`), bytes.
/// `None` off Linux or if the field is missing — the JSON reports
/// `null` and the RSS gate abstains rather than fabricating a number.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// One measured point of the series.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub nodes: u32,
    pub grating: u32,
    pub flows: u64,
    /// Slot-engine worker shards the run used.
    pub shards: usize,
    pub cells: u64,
    pub epochs: u64,
    pub wall_secs: f64,
    /// Process peak RSS after this point finished (monotonic across the
    /// series when run serially ascending).
    pub peak_rss_bytes: Option<u64>,
    /// Engine in-flight flow-state high-water mark.
    pub resident_flows_max: u64,
    /// Flows that completed before the drain cutoff.
    pub completed: u64,
    /// Median FCT in µs from the engine's streaming histogram
    /// ([`sirius_sim::FctHistogram`]: log2 buckets, ±√2 resolution,
    /// O(1) memory — no per-flow records survive a streaming run to
    /// sort exactly). `None` when nothing completed.
    pub fct_p50_us: Option<f64>,
    /// 99th-percentile FCT in µs, same source and caveats as
    /// [`fct_p50_us`](ScalePoint::fct_p50_us).
    pub fct_p99_us: Option<f64>,
    pub digest: u64,
}

impl ScalePoint {
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cells as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Throughput normalized by engine workers, so sharded and serial
    /// points are comparable on a per-core basis.
    pub fn cells_per_sec_per_core(&self) -> f64 {
        self.cells_per_sec() / self.shards.max(1) as f64
    }

    pub fn resident_bound(&self) -> u64 {
        resident_bound(self.flows)
    }
}

/// The deployment for a geometry: paper cell/slot/uplink parameters,
/// four servers per rack with a *fixed* 10 Gbps NIC at every N.
///
/// Deliberately not the paper's proportional NICs (rack bandwidth /
/// servers): those make offered traffic grow with fabric capacity, i.e.
/// ~N²·load/1.5 flows naturally in flight at once — at 4096 nodes the
/// steady-state concurrency alone would exceed the whole series' flow
/// budget, and no engine could keep residency "far below total". With
/// fixed NICs the arrival rate grows linearly with servers while
/// per-flow service time is set by the (N-independent) per-destination
/// fabric share, so in-flight population stays thousands while total
/// flows go to millions — which is exactly the axis this series tests:
/// flow *population* versus engine memory, not fabric saturation.
pub fn point_network(geom: ScaleGeom) -> SiriusConfig {
    let mut net = SiriusConfig::scaled(geom.nodes, geom.grating);
    net.servers_per_node = 4;
    net.server_rate = Rate::from_gbps(10);
    net.propagation = Duration::from_ns(100);
    net
}

/// The workload spec for a geometry: paper Pareto sizes truncated at
/// the paper's 100 KB short-flow boundary, so the largest flow's
/// service time stays well inside the run and the cell count per point
/// stays proportional to the flow count (the sweep's axis is flow
/// *population*, not elephant size).
pub fn point_workload(geom: ScaleGeom, net: &SiriusConfig, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        servers: net.total_servers() as u32,
        server_rate: net.server_rate,
        load: LOAD,
        sizes: Pareto::paper_default().truncated(1e5),
        flows: geom.flows,
        pattern: Pattern::Uniform,
        seed,
    }
}

/// Run one point through the streaming engine. The drain window is
/// derived analytically (`flows × mean inter-arrival`) because the
/// workload is never materialized, so there is no `last()` to ask.
pub fn run_point(geom: ScaleGeom, seed: u64, shards: usize) -> ScalePoint {
    let net = point_network(geom);
    let spec = point_workload(geom, &net, seed);
    let span = spec.mean_interarrival() * spec.flows;
    let mut cfg = SiriusSimConfig::new(net.clone())
        .with_seed(seed)
        .with_shards(shards)
        .with_audit(false);
    cfg.drain_timeout = Duration::from_us(200).max(span / 2);
    let m = SiriusSim::new(cfg).run_streaming(spec.stream());
    ScalePoint {
        nodes: net.nodes as u32,
        grating: net.grating_ports as u32,
        flows: geom.flows,
        shards,
        cells: m.cells_delivered,
        epochs: m.epochs_simulated,
        wall_secs: m.wall_secs,
        peak_rss_bytes: peak_rss_bytes(),
        resident_flows_max: m.resident_flows_max,
        completed: geom.flows - m.incomplete_flows,
        fct_p50_us: m
            .fct_hist
            .as_ref()
            .and_then(|h| h.percentile_ps(50.0))
            .map(|ps| ps / 1e6),
        fct_p99_us: m
            .fct_hist
            .as_ref()
            .and_then(|h| h.percentile_ps(99.0))
            .map(|ps| ps / 1e6),
        digest: m.digest,
    }
}

/// Run a series of points. Results come back in geometry order
/// regardless of `jobs` (the sweep preserves submission order), and
/// each job regenerates its own stream from the seed, so digests are
/// independent of the worker count.
pub fn run_points(geoms: &[ScaleGeom], seed: u64, jobs: usize, shards: usize) -> Vec<ScalePoint> {
    let mut sweep = Sweep::new();
    for &geom in geoms {
        sweep.push(
            format!("scale_series n={} flows={}", geom.nodes, geom.flows),
            move || run_point(geom, seed, shards),
        );
    }
    sweep.run(jobs)
}

/// The full series for a scale preset.
pub fn run(scale: Scale, seed: u64, jobs: usize, shards: usize) -> Vec<ScalePoint> {
    run_points(&series(scale), seed, jobs, shards)
}

/// Gate verdicts: `(resident_ok, rss_sublinear)`.
///
/// * `resident_ok` — every point's in-flight flow peak is under its
///   [`resident_bound`].
/// * `rss_sublinear` — over the first same-geometry pair of points
///   (same nodes and grating, more flows later — every [`series`] ends
///   with one), peak RSS grew strictly slower than the flow count
///   (`rss1/rss0 < flows1/flows0`). Same geometry is essential: node
///   fabric state grows ~N² and would swamp the flow-state signal
///   between different node counts. `None` (JSON `null`) when no such
///   pair ran or RSS was unmeasurable. `VmHWM` is process-monotonic, so
///   out-of-order completion under sweep parallelism can only inflate
///   the earlier reading — the check degrades toward vacuous-pass,
///   never flaky-fail; run `--jobs 1` for the honest reading.
pub fn gates(points: &[ScalePoint]) -> (bool, Option<bool>) {
    let resident_ok = points
        .iter()
        .all(|p| p.resident_flows_max <= p.resident_bound());
    let pair = points.iter().enumerate().find_map(|(i, a)| {
        points[i + 1..]
            .iter()
            .find(|b| (a.nodes, a.grating) == (b.nodes, b.grating) && b.flows > a.flows)
            .map(|b| (a, b))
    });
    let rss_sublinear = pair.and_then(|(a, b)| match (a.peak_rss_bytes, b.peak_rss_bytes) {
        (Some(r0), Some(r1)) if r0 > 0 => Some(r1 * a.flows < r0 * b.flows),
        _ => None,
    });
    (resident_ok, rss_sublinear)
}

pub fn table(points: &[ScalePoint]) -> Table {
    let mut t = Table::new(
        "scale-out series (streaming engine)",
        &[
            "nodes",
            "grating",
            "flows",
            "shards",
            "cells",
            "wall_s",
            "cells_per_s",
            "cells_per_s_core",
            "peak_rss_mb",
            "resident_max",
            "resident_bound",
            "completed",
            "fct_p50_us",
            "fct_p99_us",
            "digest",
        ],
    );
    let us = |v: Option<f64>| v.map(|x| f(x, 1)).unwrap_or_else(|| "n/a".into());
    for p in points {
        t.row(vec![
            p.nodes.to_string(),
            p.grating.to_string(),
            p.flows.to_string(),
            p.shards.to_string(),
            p.cells.to_string(),
            f(p.wall_secs, 3),
            f(p.cells_per_sec(), 0),
            f(p.cells_per_sec_per_core(), 0),
            p.peak_rss_bytes
                .map(|b| f(b as f64 / (1 << 20) as f64, 1))
                .unwrap_or_else(|| "n/a".into()),
            p.resident_flows_max.to_string(),
            p.resident_bound().to_string(),
            p.completed.to_string(),
            us(p.fct_p50_us),
            us(p.fct_p99_us),
            format!("{:016x}", p.digest),
        ]);
    }
    t
}

/// Hand-rolled JSON (the workspace is offline — no serde). Gate
/// verdicts ride in the artifact so the CI stage greps booleans instead
/// of re-deriving thresholds in shell; unmeasurable values are `null`,
/// never NaN.
pub fn to_json(points: &[ScalePoint], scale: Scale, jobs: usize) -> String {
    let (resident_ok, rss_sublinear) = gates(points);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"scale_series\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"load\": {LOAD},\n"));
    out.push_str(&format!("  \"resident_ok\": {resident_ok},\n"));
    match rss_sublinear {
        Some(v) => out.push_str(&format!("  \"rss_sublinear\": {v},\n")),
        None => out.push_str("  \"rss_sublinear\": null,\n"),
    }
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let rss = p
            .peak_rss_bytes
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".into());
        // Null-safe FCT columns: finite numbers or `null`, never NaN.
        let us = |v: Option<f64>| {
            v.filter(|x| x.is_finite())
                .map(|x| format!("{x:.3}"))
                .unwrap_or_else(|| "null".into())
        };
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"grating\": {}, \"flows\": {}, \"shards\": {}, \
             \"cells\": {}, \"epochs\": {}, \"wall_secs\": {:.4}, \"cells_per_sec\": {:.0}, \
             \"cells_per_sec_per_core\": {:.0}, \"peak_rss_bytes\": {}, \
             \"resident_flows_max\": {}, \"resident_bound\": {}, \"completed\": {}, \
             \"fct_p50_us\": {}, \"fct_p99_us\": {}, \
             \"digest\": \"{:016x}\"}}{}\n",
            p.nodes,
            p.grating,
            p.flows,
            p.shards,
            p.cells,
            p.epochs,
            p.wall_secs,
            p.cells_per_sec(),
            p.cells_per_sec_per_core(),
            rss,
            p.resident_flows_max,
            p.resident_bound(),
            p.completed,
            us(p.fct_p50_us),
            us(p.fct_p99_us),
            p.digest,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `results/BENCH_scale_series.json` atomically.
pub fn emit_json(points: &[ScalePoint], scale: Scale, jobs: usize) {
    match write_results_atomic("BENCH_scale_series.json", &to_json(points, scale, jobs)) {
        Ok(path) => println!("[json] {}\n", path.display()),
        Err(e) => eprintln!("warning: could not write results/BENCH_scale_series.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny custom geometry so the unit test stays fast; the real
    /// smoke points run in `ci.sh scale-smoke` and `tests/determinism.rs`.
    fn tiny() -> ScaleGeom {
        ScaleGeom {
            nodes: 64,
            grating: 16,
            flows: 1_500,
        }
    }

    #[test]
    fn tiny_point_runs_and_gates_hold() {
        let pts = run_points(&[tiny()], 7, 1, 1);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert!(p.cells > 0, "no cells delivered");
        assert!(p.epochs > 0);
        assert!(p.completed > 0, "no flow completed");
        assert!(
            p.resident_flows_max < p.flows,
            "streaming run kept every flow resident ({} of {})",
            p.resident_flows_max,
            p.flows
        );
        let (resident_ok, _) = gates(&pts);
        assert!(
            resident_ok,
            "resident gate failed: {}",
            p.resident_flows_max
        );
        // Streaming runs must still answer FCT percentiles — that is
        // the histogram's whole reason to exist (no records survive).
        let (p50, p99) = (p.fct_p50_us.unwrap(), p.fct_p99_us.unwrap());
        assert!(p50 > 0.0 && p50.is_finite(), "p50 = {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert_eq!(table(&pts).len(), 1);
    }

    #[test]
    fn series_shape_supports_both_gates() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            let s = series(scale);
            assert!(s.len() >= 2, "{scale:?}: need >= 2 points");
            for w in s.windows(2) {
                assert!(
                    w[0].nodes <= w[1].nodes,
                    "{scale:?}: nodes must be non-decreasing (VmHWM is monotonic)"
                );
            }
            // The RSS gate needs a fixed-geometry pair with a real flow
            // ratio; without one, rss_sublinear would always abstain.
            let pair = s.iter().enumerate().find_map(|(i, a)| {
                s[i + 1..]
                    .iter()
                    .find(|b| (a.nodes, a.grating) == (b.nodes, b.grating) && b.flows > a.flows)
                    .map(|b| (a.flows, b.flows))
            });
            let (f0, f1) = pair.unwrap_or_else(|| panic!("{scale:?}: no same-geometry pair"));
            assert!(f1 >= f0 * 4, "{scale:?}: flow ratio too small to gate on");
            for g in &s {
                point_network(*g).validate().unwrap();
            }
        }
        assert_eq!(series(Scale::Paper).last().unwrap().nodes, 4096);
        assert!(series(Scale::Paper).last().unwrap().flows >= 2_000_000);
    }

    #[test]
    fn jobs_cap_protects_the_paper_sweep() {
        assert_eq!(jobs_cap(Scale::Paper), 1);
        assert!(jobs_cap(Scale::Smoke) >= 1);
        assert!(jobs_cap(Scale::Quick) >= 1);
    }

    #[test]
    fn resident_bound_floors_small_runs() {
        assert_eq!(resident_bound(100), 4096);
        assert_eq!(resident_bound(1_000_000), 250_000);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mk = |flows: u64, rss: Option<u64>, resident: u64| ScalePoint {
            nodes: 128,
            grating: 16,
            flows,
            shards: 1,
            cells: 1000,
            epochs: 50,
            wall_secs: 0.5,
            peak_rss_bytes: rss,
            resident_flows_max: resident,
            completed: flows,
            fct_p50_us: Some(12.5),
            fct_p99_us: None,
            digest: 0xabcd,
        };
        // Sub-linear: flows 8x, rss 2x.
        let pts = vec![mk(8_000, Some(1 << 20), 10), mk(64_000, Some(2 << 20), 20)];
        let j = to_json(&pts, Scale::Smoke, 2);
        assert!(j.contains("\"bench\": \"scale_series\""));
        assert!(j.contains("\"scale\": \"Smoke\""));
        assert!(j.contains("\"resident_ok\": true"));
        assert!(j.contains("\"rss_sublinear\": true"));
        assert!(j.contains("\"peak_rss_bytes\": 1048576"));
        assert!(j.contains("\"resident_flows_max\": 20"));
        assert!(j.contains("\"cells_per_sec_per_core\": 2000"));
        assert!(j.contains("\"fct_p50_us\": 12.500"));
        assert!(j.contains("\"fct_p99_us\": null"));
        assert!(j.contains("\"digest\": \"000000000000abcd\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());

        // Unmeasurable RSS abstains; a resident blow-up trips the gate.
        let pts = vec![mk(8_000, None, 9_000), mk(64_000, Some(1), 10)];
        let j = to_json(&pts, Scale::Quick, 1);
        assert!(j.contains("\"rss_sublinear\": null"));
        assert!(j.contains("\"resident_ok\": false"));
        assert!(j.contains("\"peak_rss_bytes\": null"));
    }
}
