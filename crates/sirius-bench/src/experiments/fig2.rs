//! Fig. 2a (the scale tax) and Fig. 2b (CMOS scaling slowdown).

use crate::table::{f, Table};
use sirius_power::catalog::Catalog;
use sirius_power::{cmos, scale_tax};

pub fn fig2a_table() -> Table {
    let mut t = Table::new(
        "Fig 2a: network power per bisection bandwidth vs scale",
        &["layers", "max_endpoints", "W_per_Tbps"],
    );
    for row in scale_tax::fig2a(&Catalog::paper()) {
        t.row(vec![
            row.layers.to_string(),
            row.max_endpoints.to_string(),
            f(row.w_per_tbps, 1),
        ]);
    }
    t
}

pub fn fig2b_table() -> Table {
    let mut t = Table::new(
        "Fig 2b: CMOS scaling vs ideal doubling",
        &["node", "year", "perf_per_area", "perf_per_power", "ideal"],
    );
    for (g, n) in cmos::fig2b().iter().enumerate() {
        t.row(vec![
            n.label.to_string(),
            n.year.to_string(),
            f(n.perf_per_area, 1),
            f(n.perf_per_power, 1),
            f(cmos::ideal(g), 0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_rows() {
        assert_eq!(fig2a_table().len(), 5);
        assert_eq!(fig2b_table().len(), 5);
    }
}
