//! Switching granularity across technologies (§2.2 + §8).
//!
//! §2.2: "at high load, the FCT grows sharply beyond a reconfiguration
//! latency of 10 ns" — and §8's related-work survey spans six orders of
//! magnitude: Sirius' sub-ns SOA selection, electrically-tuned lasers
//! (~100 ns), free-space/piezo optics (tens of us), and MEMS circuit
//! switches (ms). This experiment runs the *same* fabric and workload at
//! slot lengths scaled to each technology's reconfiguration time (guard =
//! 10% of slot throughout, as in Fig. 11) and shows why everything slower
//! than tens of nanoseconds needs a second network for short flows.

use crate::experiments::fig11::network_for_guardband;
use crate::experiments::fig9::SHORT_FLOW_BYTES;
use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{fct_ms, Table};
use sirius_core::units::Duration;
use sirius_sim::SiriusSim;

/// Representative reconfiguration times per §8 technology class.
pub const TECHNOLOGIES: [(&str, u64); 5] = [
    ("Sirius v2 (SOA select)", 4),         // ~3.84 ns
    ("Sirius v1 (DSDBR)", 100),            // ~100 ns
    ("electrical circuit (Shoal)", 1_000), // ~1 us class
    ("free-space / piezo", 20_000),        // ~20 us (RotorNet's switch)
    ("MEMS circuit switch", 1_000_000),    // ~1 ms class
];

#[derive(Debug, Clone)]
pub struct Point {
    pub technology: &'static str,
    pub reconfig_ns: u64,
    pub fct_p99_ms: String,
    pub completed_fraction: f64,
}

/// One technology point; regenerates its own workload.
pub fn run_point(
    scale: Scale,
    name: &'static str,
    reconfig_ns: u64,
    load: f64,
    seed: u64,
) -> Point {
    let wl = scale.workload(load, seed).generate();
    let net = network_for_guardband(scale, Duration::from_ns(reconfig_ns));
    let cfg = scale.sim_config(net, &wl, seed);
    let m = SiriusSim::new(cfg).run(&wl);
    Point {
        technology: name,
        reconfig_ns,
        fct_p99_ms: fct_ms(m.fct_percentile(99.0, SHORT_FLOW_BYTES)),
        completed_fraction: m.completed_flows() as f64 / wl.len() as f64,
    }
}

pub fn run(scale: Scale, load: f64, seed: u64, jobs: usize) -> Vec<Point> {
    let mut sweep = Sweep::new();
    for (name, ns) in TECHNOLOGIES {
        sweep.push(format!("granularity reconfig={ns}ns ({name})"), move || {
            run_point(scale, name, ns, load, seed)
        });
    }
    sweep.run(jobs)
}

pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "S2.2/S8: short-flow tail vs reconfiguration time (guard = 10% of slot)",
        &["technology", "reconfig_ns", "fct_p99_ms", "completed_frac"],
    );
    for p in points {
        t.row(vec![
            p.technology.to_string(),
            p.reconfig_ns.to_string(),
            p.fct_p99_ms.clone(),
            format!("{:.3}", p.completed_fraction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_switching_destroys_short_flow_service() {
        // The §2.2/§8 claim in one table: at micro/millisecond
        // reconfiguration the short-flow tail is orders of magnitude worse
        // (or flows stop completing inside the run) than at nanoseconds.
        let pts = run(Scale::Smoke, 0.3, 5, 2);
        assert_eq!(pts.len(), TECHNOLOGIES.len());
        let ns_frac = pts[0].completed_fraction;
        let mems_frac = pts.last().unwrap().completed_fraction;
        assert!(
            ns_frac > 0.99,
            "nanosecond switching should complete everything: {ns_frac}"
        );
        assert!(
            mems_frac < ns_frac,
            "MEMS-class switching should visibly strand flows ({mems_frac} vs {ns_frac})"
        );
        // FCT (of whatever completes) degrades monotonically-ish; at least
        // the extremes must be far apart when both are measurable.
        let fast: f64 = pts[0].fct_p99_ms.parse().unwrap_or(f64::INFINITY);
        let slow: f64 = pts
            .last()
            .unwrap()
            .fct_p99_ms
            .parse()
            .unwrap_or(f64::INFINITY);
        assert!(
            slow > 3.0 * fast || mems_frac < 0.5,
            "slow switching shows no penalty: fast {fast} ms vs slow {slow} ms"
        );
    }
}
