//! Fig. 8: the physical-layer fast-switching demonstration.
//!
//! * (a) CDF of SOA rise/fall times across the chip.
//! * (b) optical intensity during a switch between adjacent vs distant
//!   wavelengths — both sub-nanosecond, span-independent.
//! * (c) burst waveforms of consecutive cell slots with the 3.84 ns
//!   guardband.
//! * (d) BER vs received power for four channels against the FEC
//!   threshold.

use crate::table::{f, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sirius_optics::ber::{Modulation, Receiver, KP4_FEC_THRESHOLD};
use sirius_optics::soa::SoaChip;
use sirius_optics::transceiver::v2;
use sirius_optics::wavelength::Grid;

/// Fig. 8a: the rise/fall-time CDF of the fabricated chip.
pub fn fig8a_table(seed: u64) -> Table {
    let chip = SoaChip::paper_chip(&mut SmallRng::seed_from_u64(seed));
    let rises = chip.rise_times();
    let falls = chip.fall_times();
    let n = rises.len() as f64;
    let mut t = Table::new(
        "Fig 8a: CDF of SOA rise/fall times (worst case pinned to paper)",
        &["cdf", "rise_ps", "fall_ps"],
    );
    for (i, (r, fl)) in rises.iter().zip(&falls).enumerate() {
        t.row(vec![
            f((i as f64 + 1.0) / n, 3),
            r.as_ps().to_string(),
            fl.as_ps().to_string(),
        ]);
    }
    t
}

/// Normalized optical intensity of the *new* wavelength `t_ps` after a
/// switch begins: an RC-style SOA turn-on with 10-90% time `rise_ps`.
pub fn turn_on_intensity(t_ps: f64, rise_ps: f64) -> f64 {
    if t_ps <= 0.0 {
        return 0.0;
    }
    // 10-90% rise of 1-exp(-t/tau) spans ~2.197*tau.
    let tau = rise_ps / 2.197;
    1.0 - (-t_ps / tau).exp()
}

/// Fig. 8b: switching transients for an adjacent and a distant wavelength
/// pair — the intensity trace of the target wavelength over time.
pub fn fig8b_table(seed: u64) -> Table {
    let chip = SoaChip::paper_chip(&mut SmallRng::seed_from_u64(seed));
    let grid = Grid::chip_19();
    let adjacent = (9usize, 10usize);
    let distant = (0usize, 18usize);
    let mut t = Table::new(
        "Fig 8b: switching transient, adjacent vs distant wavelengths",
        &["t_ps", "adjacent_intensity", "distant_intensity"],
    );
    let rise_adj = chip.gates()[adjacent.1].rise.as_ps() as f64;
    let rise_dist = chip.gates()[distant.1].rise.as_ps() as f64;
    for step in 0..=40 {
        let t_ps = step as f64 * 50.0; // 0..2 ns
        t.row(vec![
            f(t_ps, 0),
            f(turn_on_intensity(t_ps, rise_adj), 3),
            f(turn_on_intensity(t_ps, rise_dist), 3),
        ]);
    }
    println!(
        "  adjacent pair: {:.3} nm -> {:.3} nm; distant pair: {:.3} nm -> {:.3} nm",
        grid.wavelength_nm(adjacent.0 as u16),
        grid.wavelength_nm(adjacent.1 as u16),
        grid.wavelength_nm(distant.0 as u16),
        grid.wavelength_nm(distant.1 as u16),
    );
    t
}

/// Fig. 8c: burst envelope of consecutive cell slots separated by the
/// v2 guardband.
pub fn fig8c_table(seed: u64) -> Table {
    let tx = v2::transceiver(&mut SmallRng::seed_from_u64(seed));
    let guard_ps = tx.reconfiguration_time().as_ps() as f64;
    let slot_data_ps = 34_560.0; // 38.4 ns slot at 10% overhead
    let mut t = Table::new(
        "Fig 8c: burst waveform across consecutive slots (3.84 ns guardband)",
        &["t_ns", "intensity"],
    );
    let period = slot_data_ps + guard_ps;
    for step in 0..=160 {
        let t_ps = step as f64 * (2.0 * period) / 160.0;
        let phase = t_ps % period;
        let on = phase >= guard_ps;
        // Rising edge after the guardband.
        let v = if on {
            turn_on_intensity(phase - guard_ps + 200.0, 527.0)
        } else {
            0.0
        };
        t.row(vec![f(t_ps / 1000.0, 2), f(v, 3)]);
    }
    println!(
        "  guardband = {:.2} ns, slot = {:.2} ns",
        guard_ps / 1e3,
        period / 1e3
    );
    t
}

/// Fig. 8d: BER vs received power for four channels.
pub fn fig8d_table() -> Table {
    let channels: Vec<Receiver> = [0.0, 0.3, 0.6, 0.9]
        .iter()
        .map(|&p| Receiver::new(Modulation::Pam4_50).with_penalty(p))
        .collect();
    let mut t = Table::new(
        "Fig 8d: log10(BER) vs received power, 4 channels (FEC thr 2.2e-4)",
        &["rx_dbm", "ch1", "ch2", "ch3", "ch4", "fec_threshold"],
    );
    for p10 in (-100..=-20).step_by(5) {
        let dbm = p10 as f64 / 10.0;
        let mut row = vec![f(dbm, 1)];
        for ch in &channels {
            let ber = ch.pre_fec_ber(dbm).max(1e-15);
            row.push(f(ber.log10(), 2));
        }
        row.push(f(KP4_FEC_THRESHOLD.log10(), 2));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_worst_cases() {
        let t = fig8a_table(1);
        assert_eq!(t.len(), 19);
        let csv = t.to_csv();
        assert!(csv.contains("527"), "worst rise missing");
        assert!(csv.contains("912"), "worst fall missing");
    }

    #[test]
    fn turn_on_is_10_90_calibrated() {
        // 10% at ~0.105*rise/0.455... check endpoints instead: ~90% at
        // the nominal rise time measured from the 10% point.
        let rise = 527.0;
        let v10 = turn_on_intensity(0.1 * rise, rise);
        let v90 = turn_on_intensity(1.2 * rise, rise);
        assert!(v10 > 0.05 && v10 < 0.45, "v10 = {v10}");
        assert!(v90 > 0.88, "v90 = {v90}");
        assert!(turn_on_intensity(-5.0, rise) == 0.0);
    }

    #[test]
    fn fig8b_distant_is_as_fast_as_adjacent() {
        let t = fig8b_table(2);
        // Last sample: both fully on.
        let last = t.to_csv().lines().last().unwrap().to_string();
        let cells: Vec<&str> = last.split(',').collect();
        let adj: f64 = cells[1].parse().unwrap();
        let dist: f64 = cells[2].parse().unwrap();
        assert!(adj > 0.99 && dist > 0.99, "adj {adj} dist {dist}");
    }

    #[test]
    fn fig8c_has_gaps_and_bursts() {
        let t = fig8c_table(3);
        let csv = t.to_csv();
        let values: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(values.contains(&0.0), "no guardband gap");
        assert!(values.iter().any(|&v| v > 0.95), "no burst plateau");
    }

    #[test]
    fn fig8d_waterfalls_cross_threshold_near_minus8() {
        let t = fig8d_table();
        // At -8 dBm channel 1's log BER is near the threshold (-3.66).
        let row = t
            .to_csv()
            .lines()
            .find(|l| l.starts_with("-8.0"))
            .unwrap()
            .to_string();
        let ch1: f64 = row.split(',').nth(1).unwrap().parse().unwrap();
        assert!(
            (ch1 - (-3.66)).abs() < 0.15,
            "ch1 log BER at -8 dBm = {ch1}"
        );
    }
}
