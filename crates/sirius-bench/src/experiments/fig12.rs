//! Fig. 12: average goodput vs load for Sirius with 1x, 1.5x and 2x the
//! baseline uplink transceivers, against ESN (Ideal).
//!
//! Valiant load balancing halves worst-case throughput; the figure shows
//! how much over-provisioning actually recovers it under a stochastic
//! workload — the paper's conclusion is that 1.5x suffices.

use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, Table};
use sirius_sim::{EsnSim, SiriusSim};

pub const FACTORS: [f64; 3] = [1.0, 1.5, 2.0];

#[derive(Debug, Clone)]
pub struct Point {
    pub system: String,
    pub load: f64,
    pub goodput: f64,
}

/// One Sirius point at an uplink over-provisioning factor.
pub fn sirius_point(scale: Scale, load: f64, factor: f64, seed: u64) -> Point {
    let wl = scale.workload(load, seed).generate();
    let horizon = wl.last().unwrap().arrival;
    let mut net = scale.network();
    net.uplink_factor = factor;
    let cfg = scale.sim_config(net.clone(), &wl, seed);
    let m = SiriusSim::new(cfg).run(&wl);
    Point {
        system: format!("Sirius ({factor}x)"),
        load,
        goodput: m.goodput_within(horizon, net.total_servers() as u64, scale.server_share()),
    }
}

/// The ESN (Ideal) reference point at a load.
pub fn esn_point(scale: Scale, load: f64, seed: u64) -> Point {
    let wl = scale.workload(load, seed).generate();
    let horizon = wl.last().unwrap().arrival;
    let esn = EsnSim::new(scale.esn(1.0)).run(&wl);
    Point {
        system: "ESN (Ideal)".to_string(),
        load,
        goodput: esn.goodput_within(
            horizon,
            scale.network().total_servers() as u64,
            scale.server_share(),
        ),
    }
}

pub fn run(scale: Scale, loads: &[f64], seed: u64, jobs: usize) -> Vec<Point> {
    let mut sweep = Sweep::new();
    for &load in loads {
        for &factor in &FACTORS {
            sweep.push(
                format!("fig12 load={:.0}% factor={factor}x", load * 100.0),
                move || sirius_point(scale, load, factor, seed),
            );
        }
        sweep.push(format!("fig12 load={:.0}% ESN", load * 100.0), move || {
            esn_point(scale, load, seed)
        });
    }
    sweep.run(jobs)
}

pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Fig 12: average goodput vs load for 1x/1.5x/2x uplinks",
        &["load_%", "system", "goodput"],
    );
    for p in points {
        t.row(vec![
            f(p.load * 100.0, 0),
            p.system.clone(),
            f(p.goodput, 3),
        ]);
    }
    t
}

pub fn goodput_of(points: &[Point], system: &str, load: f64) -> f64 {
    points
        .iter()
        .find(|p| p.system == system && (p.load - load).abs() < 1e-9)
        .map(|p| p.goodput)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_uplinks_more_goodput_at_high_load() {
        // Fig. 12's key shape: at saturating load, goodput ranks
        // 1x < 1.5x <= 2x, and 1x visibly trails ESN.
        let pts = run(Scale::Smoke, &[1.0], 9, 2);
        let g1 = goodput_of(&pts, "Sirius (1x)", 1.0);
        let g15 = goodput_of(&pts, "Sirius (1.5x)", 1.0);
        let g2 = goodput_of(&pts, "Sirius (2x)", 1.0);
        let esn = goodput_of(&pts, "ESN (Ideal)", 1.0);
        assert!(g1 < g15, "1x {g1} !< 1.5x {g15}");
        assert!(g15 <= g2 * 1.05, "1.5x {g15} way above 2x {g2}");
        assert!(g1 < esn, "1x {g1} should trail ESN {esn}");
    }

    #[test]
    fn low_load_needs_no_extra_uplinks() {
        // "At low load no additional transceivers are needed to match
        // ESN (Ideal)'s goodput."
        let pts = run(Scale::Smoke, &[0.1], 11, 2);
        let g1 = goodput_of(&pts, "Sirius (1x)", 0.1);
        let esn = goodput_of(&pts, "ESN (Ideal)", 0.1);
        assert!(
            g1 > 0.85 * esn,
            "1x Sirius {g1} far below ESN {esn} even at low load"
        );
    }
}
