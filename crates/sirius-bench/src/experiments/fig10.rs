//! Fig. 10: impact of the congestion-control queue threshold Q
//! (2, 4, 8, 16) on FCT, goodput, peak aggregate queue occupancy per
//! node, and the out-of-order (reorder) buffer.

use crate::experiments::fig9::SHORT_FLOW_BYTES;
use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, fct_ms, Table};
use sirius_core::units::Duration;
use sirius_sim::SiriusSim;

pub const QS: [usize; 4] = [2, 4, 8, 16];

#[derive(Debug, Clone)]
pub struct Point {
    pub q: usize,
    pub load: f64,
    pub fct_p99: Option<Duration>,
    pub goodput: f64,
    /// Peak aggregate fabric (VOQ+relay) occupancy at any node, KB.
    pub peak_queue_kb: f64,
    /// Peak per-flow reorder buffer, KB.
    pub reorder_kb: f64,
}

pub fn run_point(scale: Scale, q: usize, load: f64, seed: u64) -> Point {
    let wl = scale.workload(load, seed).generate();
    let mut net = scale.network();
    net.queue_threshold = q;
    let horizon = wl.last().unwrap().arrival;
    let cfg = scale.sim_config(net, &wl, seed);
    let m = SiriusSim::new(cfg).run(&wl);
    let netcfg = scale.network();
    Point {
        q,
        load,
        fct_p99: m.fct_percentile(99.0, SHORT_FLOW_BYTES),
        goodput: m.goodput_within(horizon, netcfg.total_servers() as u64, scale.server_share()),
        peak_queue_kb: m.peak_node_fabric_bytes() as f64 / 1000.0,
        reorder_kb: m.peak_reorder_flow_bytes as f64 / 1000.0,
    }
}

pub fn run(scale: Scale, loads: &[f64], seed: u64, jobs: usize) -> Vec<Point> {
    let mut sweep = Sweep::new();
    for &q in &QS {
        for &l in loads {
            sweep.push(format!("fig10 Q={q} load={:.0}%", l * 100.0), move || {
                run_point(scale, q, l, seed)
            });
        }
    }
    sweep.run(jobs)
}

pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Fig 10: queue threshold Q sweep (FCT / goodput / occupancy / reorder)",
        &[
            "Q",
            "load_%",
            "fct_p99_ms",
            "goodput",
            "peak_queue_KB",
            "reorder_KB",
        ],
    );
    for p in points {
        t.row(vec![
            p.q.to_string(),
            f(p.load * 100.0, 0),
            fct_ms(p.fct_p99),
            f(p.goodput, 3),
            f(p.peak_queue_kb, 1),
            f(p.reorder_kb, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_occupancy_grows_with_q() {
        // Fig. 10c: larger Q admits deeper relay queues.
        let lo = run_point(Scale::Smoke, 2, 0.75, 3);
        let hi = run_point(Scale::Smoke, 16, 0.75, 3);
        assert!(
            hi.peak_queue_kb >= lo.peak_queue_kb,
            "Q=16 occupancy {} < Q=2 occupancy {}",
            hi.peak_queue_kb,
            lo.peak_queue_kb
        );
        assert!(lo.goodput > 0.0 && hi.goodput > 0.0);
    }

    #[test]
    fn table_shape() {
        let pts = run(Scale::Smoke, &[0.5], 1, 2);
        assert_eq!(pts.len(), 4);
        assert_eq!(table(&pts).len(), 4);
    }
}
