//! Fig. 6: power (a) and cost (b) of Sirius relative to an
//! electrically-switched network, at the §5 datacenter scale.

use crate::table::{f, Table};
use sirius_power::catalog::Catalog;
use sirius_power::cost;
use sirius_power::power::{self, Datacenter};

pub fn fig6a_table() -> Table {
    let cat = Catalog::paper();
    let dc = Datacenter::paper();
    let mut t = Table::new(
        "Fig 6a: Sirius/ESN power vs tunable-laser power ratio",
        &[
            "laser_ratio",
            "sirius_over_esn",
            "sirius_over_esn_2x_uplinks",
        ],
    );
    let mut dc2 = dc;
    dc2.sirius_uplink_factor = 2.0;
    for (r, ratio) in power::fig6a(&cat, &dc) {
        let with_double = power::power_ratio(&cat, &dc2, r);
        t.row(vec![f(r, 0), f(ratio, 3), f(with_double, 3)]);
    }
    t
}

pub fn fig6b_table() -> Table {
    let cat = Catalog::paper();
    let dc = Datacenter::paper();
    let mut t = Table::new(
        "Fig 6b: Sirius/ESN cost vs grating cost fraction",
        &["grating_frac_%", "vs_nonblocking", "vs_3to1_oversubscribed"],
    );
    for (frac, nb, osub) in cost::fig6b(&cat, &dc) {
        t.row(vec![f(frac * 100.0, 0), f(nb, 3), f(osub, 3)]);
    }
    t
}

/// The §5 one-off comparisons (electrically-switched Sirius variant etc.).
pub fn variants_table() -> Table {
    let cat = Catalog::paper();
    let dc = Datacenter::paper();
    let sirius = cost::sirius_cost_per_rack(&cat, &dc);
    let mut t = Table::new(
        "S5 cost variants: Sirius relative to each alternative",
        &["baseline", "sirius_cost_ratio"],
    );
    t.row(vec![
        "ESN non-blocking".into(),
        f(sirius / cost::esn_cost_per_rack(&cat, &dc), 3),
    ]);
    let mut osub = dc;
    osub.oversubscription = 3.0;
    t.row(vec![
        "ESN 3:1 oversubscribed".into(),
        f(sirius / cost::esn_cost_per_rack(&cat, &osub), 3),
    ]);
    t.row(vec![
        "electrically-switched Sirius".into(),
        f(sirius / cost::electrical_sirius_cost_per_rack(&cat, &dc), 3),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_rows() {
        assert_eq!(fig6a_table().len(), 6);
        assert_eq!(fig6b_table().len(), 6);
        assert_eq!(variants_table().len(), 3);
    }
}
