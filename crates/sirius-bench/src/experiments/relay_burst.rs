//! `RELAY_BURST` sensitivity (ROADMAP open item): how many relayed cells
//! a node may forward per slot on top of its own traffic.
//!
//! The knob trades intermediate buffering against relay throughput: the
//! §4.3 fabric-queue bound is `(burst + 1) x queue_threshold x N` cells
//! per node, so small bursts cap SRAM but throttle the second VLB hop,
//! inflating tail FCT and (at saturation) goodput. The sweep measures
//! both sides — short-flow p99 FCT against the fig. 11 guardband curve,
//! and saturation goodput with the observed peak fabric occupancy next to
//! its analytic bound — to justify the default of 3.

use crate::experiments::fig11::network_for_guardband;
use crate::experiments::fig9::SHORT_FLOW_BYTES;
use crate::pool::Sweep;
use crate::scale::Scale;
use crate::table::{f, fct_ms, Table};
use sirius_core::units::Duration;
use sirius_sim::SiriusSim;

/// Burst lengths swept, bracketing the default (3).
pub const BURSTS: [u8; 5] = [1, 2, 3, 6, 12];
/// Guardband subset of fig. 11's x-axis (the curve's two ends + default).
pub const GUARDS_NS: [u64; 3] = [1, 10, 40];

#[derive(Debug, Clone)]
pub struct FctPoint {
    pub burst: u8,
    pub guard_ns: u64,
    pub fct_p99: Option<Duration>,
}

/// One (guardband, burst) FCT point; regenerates its own workload.
pub fn fct_point(scale: Scale, load: f64, seed: u64, guard_ns: u64, burst: u8) -> FctPoint {
    let wl = scale.workload(load, seed).generate();
    let net = network_for_guardband(scale, Duration::from_ns(guard_ns));
    let cfg = scale.sim_config(net, &wl, seed).with_relay_burst(burst);
    let m = SiriusSim::new(cfg).run(&wl);
    FctPoint {
        burst,
        guard_ns,
        fct_p99: m.fct_percentile(99.0, SHORT_FLOW_BYTES),
    }
}

/// Short-flow p99 FCT across (burst, guardband), fig. 11 style: the slot
/// is rescaled so the guardband stays 10% of it.
pub fn run_fct(
    scale: Scale,
    load: f64,
    seed: u64,
    bursts: &[u8],
    guards_ns: &[u64],
    jobs: usize,
) -> Vec<FctPoint> {
    let mut sweep = Sweep::new();
    for &g in guards_ns {
        for &b in bursts {
            sweep.push(
                format!("relay_burst fct guard={g}ns burst={b}"),
                move || fct_point(scale, load, seed, g, b),
            );
        }
    }
    sweep.run(jobs)
}

#[derive(Debug, Clone)]
pub struct SatPoint {
    pub burst: u8,
    /// Normalized goodput at L = 1.0 over the arrival span.
    pub goodput: f64,
    /// Peak per-node fabric occupancy observed (cells).
    pub peak_fabric_cells: u64,
    /// The §4.3 analytic bound for this burst (cells).
    pub bound_cells: u64,
}

/// One saturation point at a burst length; regenerates its own workload.
pub fn sat_point(scale: Scale, seed: u64, burst: u8) -> SatPoint {
    let net = scale.network();
    let wl = scale.workload(1.0, seed).generate();
    let horizon = wl.last().unwrap().arrival;
    let cfg = scale
        .sim_config(net.clone(), &wl, seed)
        .with_relay_burst(burst);
    let m = SiriusSim::new(cfg).run(&wl);
    SatPoint {
        burst,
        goodput: m.goodput_within(horizon, net.total_servers() as u64, scale.server_share()),
        peak_fabric_cells: m.peak_node_fabric_cells,
        bound_cells: (burst as u64 + 1) * net.queue_threshold as u64 * net.nodes as u64,
    }
}

/// Saturation goodput and fabric occupancy per burst, on the scale's
/// standard network.
pub fn run_saturation(scale: Scale, seed: u64, bursts: &[u8], jobs: usize) -> Vec<SatPoint> {
    let mut sweep = Sweep::new();
    for &b in bursts {
        sweep.push(format!("relay_burst sat burst={b}"), move || {
            sat_point(scale, seed, b)
        });
    }
    sweep.run(jobs)
}

pub fn fct_table(points: &[FctPoint]) -> Table {
    let mut t = Table::new(
        "RELAY_BURST sweep: short-flow p99 FCT vs guardband (fig. 11 axis)",
        &["guard_ns", "burst", "fct_p99_ms"],
    );
    for p in points {
        t.row(vec![
            p.guard_ns.to_string(),
            p.burst.to_string(),
            fct_ms(p.fct_p99),
        ]);
    }
    t
}

pub fn sat_table(points: &[SatPoint]) -> Table {
    let mut t = Table::new(
        "RELAY_BURST sweep: saturation goodput and §4.3 fabric bound",
        &["burst", "goodput", "peak_fabric_cells", "bound_cells"],
    );
    for p in points {
        t.row(vec![
            p.burst.to_string(),
            f(p.goodput, 3),
            p.peak_fabric_cells.to_string(),
            p.bound_cells.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_occupancy_respects_the_bound_for_every_burst() {
        let pts = run_saturation(Scale::Smoke, 9, &[1, 3, 12], 2);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.goodput > 0.0, "burst {}: no goodput", p.burst);
            assert!(
                p.peak_fabric_cells <= p.bound_cells,
                "burst {}: peak {} exceeds §4.3 bound {}",
                p.burst,
                p.peak_fabric_cells,
                p.bound_cells
            );
        }
        // The bound scales linearly with burst; occupancy headroom is the
        // cost of larger bursts.
        assert!(pts[2].bound_cells > pts[0].bound_cells);
        assert_eq!(sat_table(&pts).len(), 3);
    }

    #[test]
    fn fct_sweep_covers_the_grid() {
        let pts = run_fct(Scale::Smoke, 0.25, 9, &[1, 3], &[1, 40], 2);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.fct_p99.is_some(), "burst {} produced no FCT", p.burst);
        }
        assert_eq!(fct_table(&pts).len(), 4);
    }
}
