//! Live-process sync: the measurement behind `results/BENCH_live_sync.json`.
//!
//! Spawns N real `sirius-sync-node` OS processes — the *same*
//! [`SyncEngine`](sirius_sync::engine::SyncEngine) the simulator drives,
//! behind `UdpTransport`/`OsTime` instead of `SimTransport`/`SimTime` —
//! over UDP loopback, collects each node's one-line `key=value` report,
//! and emits the achieved |offset| distribution next to the in-sim
//! prediction for the same geometry.
//!
//! The two numbers are *expected* to differ by orders of magnitude, and
//! the artifact says so rather than hiding it: the simulation models
//! picosecond detector noise on a passive optical path, while loopback
//! UDP delivery is dominated by scheduler wakeup latency (tens of
//! microseconds). What the live run demonstrates is the protocol core
//! itself — rotation, replay/stale policing, RTT-calibrated measurement
//! corrections, PLL lock — running unmodified outside the simulator, with
//! the residual offset bounded well inside an epoch (`locked`).
//!
//! Wall clock is bounded: children that outlive [`LiveConfig::deadline`]
//! are killed and the run reports an error, so a hung barrier can never
//! wedge CI.

use crate::scale::Scale;
use crate::table::{f, write_results_atomic, Table};
use std::collections::HashMap;
use std::io::Read;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Geometry and pacing of one live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Node processes to spawn (>= 2).
    pub nodes: usize,
    /// Epochs each node free-runs before reporting.
    pub epochs: u64,
    /// Epoch length, µs (wall time — these are real microseconds).
    pub epoch_us: u64,
    /// First UDP port; node `i` binds `127.0.0.1:(port_base + i)`.
    pub port_base: u16,
    /// Leader rotation period, epochs.
    pub rotation: u64,
    /// Pre-loop §A.2 RTT calibration window, ms.
    pub calib_ms: u64,
}

impl LiveConfig {
    /// Preset per harness scale. Even `Paper` stays ~30 s: the offset
    /// process is stationary after lock, so more epochs sharpen the
    /// tail estimate but do not change the verdict.
    pub fn for_scale(scale: Scale) -> LiveConfig {
        let (nodes, epochs) = match scale {
            Scale::Smoke => (4, 1_500),
            Scale::Quick => (4, 3_000),
            Scale::Paper => (8, 15_000),
        };
        LiveConfig {
            nodes,
            epochs,
            epoch_us: 2_000,
            port_base: 47_860,
            rotation: 4,
            calib_ms: 200,
        }
    }

    /// Hard kill deadline: barrier budget + calibration + 3x the nominal
    /// run length + slack. Generous, but finite — the CI stage's wall
    /// clock bound comes from here.
    pub fn deadline(&self) -> Duration {
        let run_us = self.epochs.saturating_mul(self.epoch_us);
        Duration::from_secs(15)
            + Duration::from_millis(self.calib_ms)
            + Duration::from_micros(run_us.saturating_mul(3))
    }

    /// One epoch in ps — the scale the offset samples live on.
    pub fn epoch_ps(&self) -> f64 {
        self.epoch_us as f64 * 1e6
    }
}

/// One node's parsed end-of-run report line.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    pub node: u64,
    /// Beacons applied through `SyncEngine::on_beacon`.
    pub applied: u64,
    /// Epochs this node led (broadcast a beacon).
    pub led: u64,
    pub duplicates: u64,
    pub stale: u64,
    pub wrong_leader: u64,
    pub timeouts: u64,
    pub malformed: u64,
    /// Final one-way delay estimate (the measurement correction), ps.
    pub delay_est_ps: f64,
    /// Post-warmup |offset| samples behind the percentiles below.
    pub samples: u64,
    pub p50_ps: f64,
    pub p99_ps: f64,
    pub max_ps: f64,
    /// Final PLL frequency trim, ppm.
    pub freq_ppm: f64,
}

/// Parse a node's stdout: scan for the single `key=value` report line.
pub fn parse_report(text: &str) -> Result<NodeReport, String> {
    let line = text
        .lines()
        .find(|l| l.starts_with("node="))
        .ok_or_else(|| format!("no report line in output {text:?}"))?;
    let kv: HashMap<&str, &str> = line
        .split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .collect();
    let int = |key: &str| -> Result<u64, String> {
        kv.get(key)
            .ok_or_else(|| format!("report missing {key}: {line:?}"))?
            .parse::<u64>()
            .map_err(|e| format!("report field {key}: {e}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        let v = kv
            .get(key)
            .ok_or_else(|| format!("report missing {key}: {line:?}"))?
            .parse::<f64>()
            .map_err(|e| format!("report field {key}: {e}"))?;
        if !v.is_finite() {
            return Err(format!("report field {key} is not finite: {line:?}"));
        }
        Ok(v)
    };
    Ok(NodeReport {
        node: int("node")?,
        applied: int("applied")?,
        led: int("led")?,
        duplicates: int("duplicates")?,
        stale: int("stale")?,
        wrong_leader: int("wrong_leader")?,
        timeouts: int("timeouts")?,
        malformed: int("malformed")?,
        delay_est_ps: num("delay_est_ps")?,
        samples: int("samples")?,
        p50_ps: num("p50_ps")?,
        p99_ps: num("p99_ps")?,
        max_ps: num("max_ps")?,
        freq_ppm: num("freq_ppm")?,
    })
}

/// Outcome of one live run plus the in-sim prediction for the same
/// geometry.
#[derive(Debug, Clone)]
pub struct LiveResult {
    pub cfg: LiveConfig,
    /// Per-node reports, sorted by node id; one per spawned process.
    pub reports: Vec<NodeReport>,
    /// Orchestrator wall clock: spawn to last exit, seconds.
    pub wall_secs: f64,
    /// `sync_sim::run` max pairwise deviation for the same nodes and
    /// epoch length (detector-noise-limited — the optical-path bound the
    /// loopback numbers should be read against).
    pub sim_max_deviation_ps: f64,
    /// Epochs the prediction simulated.
    pub sim_epochs: u64,
}

impl LiveResult {
    /// Worst-of-nodes percentile: the cluster is only as synchronized as
    /// its worst member.
    pub fn achieved_p50_ps(&self) -> f64 {
        self.reports.iter().map(|r| r.p50_ps).fold(0.0, f64::max)
    }

    pub fn achieved_p99_ps(&self) -> f64 {
        self.reports.iter().map(|r| r.p99_ps).fold(0.0, f64::max)
    }

    pub fn achieved_max_ps(&self) -> f64 {
        self.reports.iter().map(|r| r.max_ps).fold(0.0, f64::max)
    }

    pub fn applied_total(&self) -> u64 {
        self.reports.iter().map(|r| r.applied).sum()
    }

    /// Beacon applications if every non-leader applied every epoch's
    /// beacon: one leader per epoch, everyone else follows.
    pub fn applied_expected(&self) -> u64 {
        self.cfg.epochs * (self.cfg.nodes as u64 - 1)
    }

    /// The artifact's verdict: every node reported with post-warmup
    /// samples, the worst p99 |offset| is inside one epoch, and at least
    /// half the ideal beacon applications landed (pacing jitter eats a
    /// few; losing half would mean the cluster never actually locked).
    pub fn locked(&self) -> bool {
        let p99 = self.achieved_p99_ps();
        self.reports.len() == self.cfg.nodes
            && self.reports.iter().all(|r| r.samples > 0)
            && p99.is_finite()
            && p99 > 0.0
            && p99 < self.cfg.epoch_ps()
            && self.applied_total() * 2 >= self.applied_expected()
    }
}

/// Locate the `sirius-sync-node` binary: `SIRIUS_SYNC_NODE` env override
/// first, then siblings of the current executable (covers both
/// `target/<profile>/` for installed bins and `target/<profile>/deps/`
/// for test executables).
pub fn node_binary() -> Result<PathBuf, String> {
    if let Ok(p) = std::env::var("SIRIUS_SYNC_NODE") {
        let p = PathBuf::from(p);
        return if p.is_file() {
            Ok(p)
        } else {
            Err(format!("SIRIUS_SYNC_NODE={} is not a file", p.display()))
        };
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dir = exe.parent();
    for _ in 0..3 {
        let Some(d) = dir else { break };
        let cand = d.join("sirius-sync-node");
        if cand.is_file() {
            return Ok(cand);
        }
        dir = d.parent();
    }
    Err(format!(
        "sirius-sync-node not found near {} (build it, or set SIRIUS_SYNC_NODE)",
        exe.display()
    ))
}

fn kill_all(children: &mut [(usize, Child)]) {
    for (_, c) in children.iter_mut() {
        let _ = c.kill();
        let _ = c.wait();
    }
}

/// Spawn the cluster, wait (bounded), parse every report, and attach the
/// in-sim prediction.
pub fn run(cfg: &LiveConfig) -> Result<LiveResult, String> {
    if cfg.nodes < 2 {
        return Err("live sync needs at least 2 nodes".into());
    }
    let bin = node_binary()?;
    let t0 = Instant::now();
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(cfg.nodes);
    for i in 0..cfg.nodes {
        let spawned = Command::new(&bin)
            .args([
                "--node",
                &i.to_string(),
                "--nodes",
                &cfg.nodes.to_string(),
                "--epochs",
                &cfg.epochs.to_string(),
                "--epoch-us",
                &cfg.epoch_us.to_string(),
                "--port-base",
                &cfg.port_base.to_string(),
                "--rotation",
                &cfg.rotation.to_string(),
                "--calib-ms",
                &cfg.calib_ms.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn();
        match spawned {
            Ok(c) => children.push((i, c)),
            Err(e) => {
                kill_all(&mut children);
                return Err(format!("spawning node {i} ({}): {e}", bin.display()));
            }
        }
    }

    // Bounded wait: poll until every child exits or the deadline passes.
    // One report line per child cannot fill a pipe buffer, so reading
    // stdout after exit is safe.
    let deadline = t0 + cfg.deadline();
    let mut exited = 0usize;
    let mut done = vec![false; cfg.nodes];
    while exited < cfg.nodes {
        if Instant::now() > deadline {
            kill_all(&mut children);
            return Err(format!(
                "deadline {:?} exceeded with {} of {} nodes still running",
                cfg.deadline(),
                cfg.nodes - exited,
                cfg.nodes
            ));
        }
        for (idx, (_, c)) in children.iter_mut().enumerate() {
            if !done[idx] {
                match c.try_wait() {
                    Ok(Some(_)) => {
                        done[idx] = true;
                        exited += 1;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        kill_all(&mut children);
                        return Err(format!("waiting on node {idx}: {e}"));
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    let mut reports = Vec::with_capacity(cfg.nodes);
    for (i, mut c) in children {
        let status = c.wait().map_err(|e| format!("node {i}: wait: {e}"))?;
        let mut out = String::new();
        if let Some(mut so) = c.stdout.take() {
            let _ = so.read_to_string(&mut out);
        }
        if !status.success() {
            return Err(format!("node {i} exited with {status}; output {out:?}"));
        }
        reports.push(parse_report(&out).map_err(|e| format!("node {i}: {e}"))?);
    }
    reports.sort_by_key(|r| r.node);

    // The in-sim prediction: identical nodes/epoch geometry on the
    // paper's oscillator and detector-noise model.
    let sim_cfg = sirius_sync::SyncSimConfig {
        nodes: cfg.nodes,
        epoch_us: cfg.epoch_us as f64,
        ..sirius_sync::SyncSimConfig::paper(cfg.nodes)
    };
    let sim = sirius_sync::run_sync(&sim_cfg, cfg.epochs, &[]);

    Ok(LiveResult {
        cfg: cfg.clone(),
        reports,
        wall_secs,
        sim_max_deviation_ps: sim.max_deviation_ps,
        sim_epochs: sim.epochs,
    })
}

/// Per-node stdout table (offsets in µs — that is the scale loopback
/// lives on).
pub fn table(res: &LiveResult) -> Table {
    let mut t = Table::new(
        "live sync: N sirius-sync-node processes over UDP loopback",
        &[
            "node",
            "applied",
            "led",
            "dup",
            "stale",
            "wrong_ldr",
            "timeouts",
            "delay_us",
            "samples",
            "p50_us",
            "p99_us",
            "max_us",
            "freq_ppm",
        ],
    );
    for r in &res.reports {
        t.row(vec![
            r.node.to_string(),
            r.applied.to_string(),
            r.led.to_string(),
            r.duplicates.to_string(),
            r.stale.to_string(),
            r.wrong_leader.to_string(),
            r.timeouts.to_string(),
            f(r.delay_est_ps / 1e6, 1),
            r.samples.to_string(),
            f(r.p50_ps / 1e6, 1),
            f(r.p99_ps / 1e6, 1),
            f(r.max_ps / 1e6, 1),
            f(r.freq_ppm, 3),
        ]);
    }
    t
}

/// Hand-rolled JSON (offline workspace — no serde). Mirrors the
/// scale-series artifact conventions: gate verdict baked in so
/// `ci.sh live-smoke` greps a boolean, no NaN/inf ever emitted.
pub fn to_json(res: &LiveResult, scale: Scale) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"live_sync\",\n");
    out.push_str("  \"transport\": \"udp_loopback\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str(&format!("  \"nodes\": {},\n", res.cfg.nodes));
    out.push_str(&format!("  \"epochs\": {},\n", res.cfg.epochs));
    out.push_str(&format!("  \"epoch_us\": {},\n", res.cfg.epoch_us));
    out.push_str(&format!("  \"rotation\": {},\n", res.cfg.rotation));
    out.push_str(&format!("  \"wall_secs\": {:.3},\n", res.wall_secs));
    out.push_str(&format!("  \"applied_total\": {},\n", res.applied_total()));
    out.push_str(&format!(
        "  \"applied_expected\": {},\n",
        res.applied_expected()
    ));
    out.push_str(&format!(
        "  \"achieved_p50_ps\": {:.0},\n",
        res.achieved_p50_ps()
    ));
    out.push_str(&format!(
        "  \"achieved_p99_ps\": {:.0},\n",
        res.achieved_p99_ps()
    ));
    out.push_str(&format!(
        "  \"achieved_max_ps\": {:.0},\n",
        res.achieved_max_ps()
    ));
    out.push_str(&format!(
        "  \"sim_max_deviation_ps\": {:.3},\n",
        res.sim_max_deviation_ps
    ));
    out.push_str(&format!("  \"sim_epochs\": {},\n", res.sim_epochs));
    out.push_str(&format!("  \"locked\": {},\n", res.locked()));
    out.push_str("  \"node_reports\": [\n");
    for (i, r) in res.reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"node\": {}, \"applied\": {}, \"led\": {}, \"duplicates\": {}, \
             \"stale\": {}, \"wrong_leader\": {}, \"timeouts\": {}, \"malformed\": {}, \
             \"delay_est_ps\": {:.0}, \"samples\": {}, \"p50_ps\": {:.0}, \
             \"p99_ps\": {:.0}, \"max_ps\": {:.0}, \"freq_ppm\": {:.3}}}{}\n",
            r.node,
            r.applied,
            r.led,
            r.duplicates,
            r.stale,
            r.wrong_leader,
            r.timeouts,
            r.malformed,
            r.delay_est_ps,
            r.samples,
            r.p50_ps,
            r.p99_ps,
            r.max_ps,
            r.freq_ppm,
            if i + 1 == res.reports.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `results/BENCH_live_sync.json` atomically.
pub fn emit_json(res: &LiveResult, scale: Scale) {
    match write_results_atomic("BENCH_live_sync.json", &to_json(res, scale)) {
        Ok(path) => println!("[json] {}\n", path.display()),
        Err(e) => eprintln!("warning: could not write results/BENCH_live_sync.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "node=2 applied=670 led=224 duplicates=0 stale=1 wrong_leader=0 \
         timeouts=0 malformed=0 delay_est_ps=120000000 samples=536 \
         p50_ps=50000000 p99_ps=200000000 max_ps=240000000 freq_ppm=60.300\n";

    fn report(node: u64) -> NodeReport {
        let mut r = parse_report(LINE).unwrap();
        r.node = node;
        r
    }

    fn result(nodes: usize, epochs: u64) -> LiveResult {
        LiveResult {
            cfg: LiveConfig {
                nodes,
                epochs,
                epoch_us: 2_000,
                port_base: 48_421,
                rotation: 4,
                calib_ms: 50,
            },
            reports: (0..nodes as u64).map(report).collect(),
            wall_secs: 3.2,
            sim_max_deviation_ps: 4.8,
            sim_epochs: epochs,
        }
    }

    #[test]
    fn report_line_roundtrips_and_bad_lines_are_rejected() {
        let r = parse_report(LINE).unwrap();
        assert_eq!((r.node, r.applied, r.led), (2, 670, 224));
        assert_eq!((r.duplicates, r.stale, r.wrong_leader), (0, 1, 0));
        assert_eq!(r.samples, 536);
        assert_eq!(r.p99_ps, 2.0e8);
        assert_eq!(r.freq_ppm, 60.3);
        // Diagnostics before the report line are skipped, not fatal.
        let noisy = format!("some stderr-ish chatter\n{LINE}");
        assert_eq!(parse_report(&noisy).unwrap(), r);
        assert!(parse_report("no report here\n").is_err());
        assert!(parse_report("node=0 applied=1\n").is_err(), "missing keys");
        assert!(parse_report(&LINE.replace("60.300", "NaN")).is_err());
    }

    #[test]
    fn locked_gate_tracks_p99_and_applied() {
        let res = result(4, 1_000);
        // 4 nodes x 670 applied = 2680 >= 3000/2; p99 0.2 ms < 2 ms epoch.
        assert!(res.locked());
        assert_eq!(res.applied_expected(), 3_000);
        assert_eq!(res.achieved_p99_ps(), 2.0e8);

        let mut unsynced = result(4, 1_000);
        for r in &mut unsynced.reports {
            r.p99_ps = 3e9; // wider than an epoch
        }
        assert!(!unsynced.locked());

        let mut deaf = result(4, 1_000);
        for r in &mut deaf.reports {
            r.applied = 100; // cluster mostly missed its beacons
        }
        assert!(!deaf.locked());

        let mut partial = result(4, 1_000);
        partial.reports.pop(); // a node never reported
        assert!(!partial.locked());

        let mut empty = result(4, 1_000);
        empty.reports[1].samples = 0; // reported, but saw no post-warmup beacon
        assert!(!empty.locked());
    }

    #[test]
    fn json_is_well_formed_and_carries_the_verdict() {
        let res = result(4, 1_000);
        let j = to_json(&res, Scale::Smoke);
        assert!(j.contains("\"bench\": \"live_sync\""));
        assert!(j.contains("\"transport\": \"udp_loopback\""));
        assert!(j.contains("\"scale\": \"Smoke\""));
        assert!(j.contains("\"locked\": true"));
        assert!(j.contains("\"applied_total\": 2680"));
        assert!(j.contains("\"achieved_p99_ps\": 200000000"));
        assert!(j.contains("\"sim_max_deviation_ps\": 4.800"));
        assert!(j.contains("\"freq_ppm\": 60.300"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains("NaN") && !j.contains("inf"));
        assert_eq!(table(&res).len(), 4);
    }

    #[test]
    fn presets_are_bounded_and_deadline_scales() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            let cfg = LiveConfig::for_scale(scale);
            assert!(cfg.nodes >= 2);
            assert!(
                cfg.deadline() < Duration::from_secs(120),
                "{scale:?}: live run deadline must bound CI wall clock"
            );
        }
        let smoke = LiveConfig::for_scale(Scale::Smoke);
        assert!(smoke.epochs * smoke.epoch_us <= 4_000_000, "smoke <= 4 s");
    }

    /// End-to-end: a real 2-process cluster over loopback. Skipped (with
    /// a note) when the node binary is not built — `ci.sh live-smoke`
    /// covers the spawn path unconditionally.
    #[test]
    fn two_process_cluster_locks_over_loopback() {
        if std::env::var("SIRIUS_SYNC_NODE").is_err() && node_binary().is_err() {
            eprintln!("skipping: sirius-sync-node not built");
            return;
        }
        let cfg = LiveConfig {
            nodes: 2,
            epochs: 400,
            epoch_us: 1_000,
            port_base: 48_431,
            rotation: 4,
            calib_ms: 50,
        };
        let res = run(&cfg).expect("live cluster run");
        assert_eq!(res.reports.len(), 2);
        assert!(res.locked(), "cluster failed to lock: {:?}", res.reports);
        assert!(res.sim_max_deviation_ps > 0.0);
        assert!(res.wall_secs < cfg.deadline().as_secs_f64());
    }
}
