//! The §6 synchronization experiment: maximum clock-phase deviation
//! between nodes, with leader rotation and failure injection, plus the
//! free-running ablation.

use crate::table::{f, Table};
use sirius_sync::pll::Pll;
use sirius_sync::sync_sim::{run, SyncSimConfig};

/// One scenario row: label, config, and `(node, epoch)` failure schedule.
type Scenario = (&'static str, SyncSimConfig, Vec<(usize, u64)>);

/// Epochs per scenario (the deviation process is stationary after lock;
/// the harness's stationarity check below licenses extrapolating to the
/// paper's 24 h).
pub fn sync_table(epochs: u64) -> Table {
    let mut t = Table::new(
        "S6: clock phase deviation (paper: +-5 ps over 24 h between 2 nodes)",
        &["scenario", "nodes", "epochs", "max_dev_ps", "stationary"],
    );

    let scenarios: Vec<Scenario> = vec![
        ("2 nodes (paper setup)", SyncSimConfig::paper(2), vec![]),
        ("8 nodes", SyncSimConfig::paper(8), vec![]),
        ("32 nodes", SyncSimConfig::paper(32), vec![]),
        (
            "8 nodes, leader dies mid-run",
            SyncSimConfig::paper(8),
            vec![(0, epochs / 2)],
        ),
        (
            "free-running (PLL off)",
            SyncSimConfig {
                pll: Pll {
                    kp: 0.0,
                    ki: 0.0,
                    max_slew_ppm: 0.0,
                },
                ..SyncSimConfig::paper(2)
            },
            vec![],
        ),
    ];

    for (name, cfg, failures) in scenarios {
        let r = run(&cfg, epochs, &failures);
        let lo = r
            .window_max_ps
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = r.window_max_ps.iter().cloned().fold(0.0f64, f64::max);
        let stationary = lo > 0.0 && hi / lo < 3.0;
        t.row(vec![
            name.to_string(),
            cfg.nodes.to_string(),
            r.epochs.to_string(),
            f(r.max_deviation_ps, 2),
            stationary.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_is_within_5ps_and_ablation_is_not() {
        let t = sync_table(30_000);
        let csv = t.to_csv();
        let paper_row = csv.lines().find(|l| l.contains("paper setup")).unwrap();
        let dev: f64 = paper_row.split(',').nth(3).unwrap().parse().unwrap();
        assert!(dev < 10.0, "synced deviation {dev} ps");
        let free = csv.lines().find(|l| l.contains("free-running")).unwrap();
        let dev: f64 = free.split(',').nth(3).unwrap().parse().unwrap();
        assert!(dev > 100.0, "free-running deviation {dev} ps");
    }
}
