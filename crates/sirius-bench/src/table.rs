//! Tabular output: aligned stdout tables plus CSV files under `results/`.
//!
//! Every figure harness prints the same rows/series the paper reports and
//! mirrors them to a CSV so EXPERIMENTS.md numbers are regenerable.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Write `results/<name>` atomically: the contents land in
/// `results/.<name>.<pid>.<seq>.tmp` first and are renamed into place, so
/// an interrupted or concurrent run can never leave a truncated artifact
/// (rename within a directory is atomic on every platform we target).
///
/// The tmp suffix is unique per process *and* per call (pid + monotonic
/// counter): with a fixed tmp name, two concurrent writers of the same
/// artifact — exactly what `ci.sh bench-smoke` does with its
/// serial-vs-parallel binary comparison — could interleave
/// `write(tmp)` / `rename(tmp)` and rename each other's half-written
/// file into place. With unique tmps the final rename is always of a
/// fully-written file; last writer wins whole.
pub fn write_results_atomic(name: &str, contents: &str) -> io::Result<PathBuf> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)?;
    let tmp = dir.join(format!(
        ".{name}.{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, contents)?;
    let path = dir.join(name);
    match fs::rename(&tmp, &path) {
        Ok(()) => Ok(path),
        Err(e) => {
            // Don't strand the tmp on a failed rename (e.g. target dir
            // vanished between create_dir_all and here).
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A simple column-aligned table that can also serialize itself as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// CSV serialization (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print to stdout and write `results/<name>.csv` (atomically, via
    /// [`write_results_atomic`]).
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let file = format!("{name}.csv");
        match write_results_atomic(&file, &self.to_csv()) {
            Ok(path) => println!("[csv] {}\n", path.display()),
            Err(e) => eprintln!("warning: could not write results/{file}: {e}"),
        }
    }
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Format an optional FCT duration as milliseconds (the paper's axes).
pub fn fct_ms(v: Option<sirius_core::units::Duration>) -> String {
    match v {
        Some(d) => format!("{:.5}", d.as_ms_f64()),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["load", "value"]);
        t.row(vec!["10".into(), "0.5".into()]);
        t.row(vec!["100".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("load"));
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "load,value");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    /// No tmp file for `name` left behind in `results/`.
    fn assert_no_tmps(name: &str) {
        let prefix = format!(".{name}.");
        for e in fs::read_dir("results").unwrap() {
            let f = e.unwrap().file_name().into_string().unwrap();
            assert!(
                !(f.starts_with(&prefix) && f.ends_with(".tmp")),
                "tmp file {f} must be renamed away"
            );
        }
    }

    #[test]
    fn atomic_write_lands_content_and_leaves_no_tmp() {
        let name = "table_atomic_write_selftest.csv";
        let path = write_results_atomic(name, "a,b\n1,2\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        assert_no_tmps(name);
        // Overwrite is atomic too: a second write replaces, never truncates.
        let path2 = write_results_atomic(name, "a,b\n3,4\n").unwrap();
        assert_eq!(fs::read_to_string(&path2).unwrap(), "a,b\n3,4\n");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir(path.parent().unwrap());
    }

    /// Regression test for the fixed-tmp-name race: two writers hammering
    /// the same artifact must always leave one writer's *complete*
    /// content — with the old shared `.<name>.tmp`, writer A could rename
    /// writer B's half-written tmp into place (or the rename could fail
    /// outright on platforms where the tmp vanishes under it).
    #[test]
    fn concurrent_writers_always_leave_one_complete_artifact() {
        let name = "table_two_writer_selftest.csv";
        // Large enough that a write() is unlikely to be a single atomic
        // syscall-visible unit if tmps were shared.
        let a = format!("a\n{}", "A,1\n".repeat(20_000));
        let b = format!("b\n{}", "B,2\n".repeat(20_000));
        std::thread::scope(|s| {
            for content in [&a, &b] {
                s.spawn(move || {
                    for _ in 0..50 {
                        write_results_atomic(name, content).unwrap();
                    }
                });
            }
        });
        let path = PathBuf::from("results").join(name);
        let last = fs::read_to_string(&path).unwrap();
        assert!(
            last == a || last == b,
            "artifact must be exactly one writer's content, got {} bytes",
            last.len()
        );
        assert_no_tmps(name);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.12345, 2), "0.12");
        assert_eq!(fct_ms(None), "-");
        assert_eq!(
            fct_ms(Some(sirius_core::units::Duration::from_us(10))),
            "0.01000"
        );
    }
}
