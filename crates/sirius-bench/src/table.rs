//! Tabular output: aligned stdout tables plus CSV files under `results/`.
//!
//! Every figure harness prints the same rows/series the paper reports and
//! mirrors them to a CSV so EXPERIMENTS.md numbers are regenerable.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple column-aligned table that can also serialize itself as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// CSV serialization (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print to stdout and write `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = PathBuf::from("results");
        if fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[csv] {}\n", path.display());
            }
        }
    }
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Format an optional FCT duration as milliseconds (the paper's axes).
pub fn fct_ms(v: Option<sirius_core::units::Duration>) -> String {
    match v {
        Some(d) => format!("{:.5}", d.as_ms_f64()),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["load", "value"]);
        t.row(vec!["10".into(), "0.5".into()]);
        t.row(vec!["100".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("load"));
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "load,value");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.12345, 2), "0.12");
        assert_eq!(fct_ms(None), "-");
        assert_eq!(
            fct_ms(Some(sirius_core::units::Duration::from_us(10))),
            "0.01000"
        );
    }
}
