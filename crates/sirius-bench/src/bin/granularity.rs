//! Regenerates the §2.2/§8 switching-granularity comparison.
use sirius_bench::experiments::granularity;
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running switching-granularity sweep at {scale:?} scale...");
    granularity::table(&granularity::run(scale, 0.75, 1)).emit("granularity");
}
