//! Regenerates the §2.2/§8 switching-granularity comparison.
use sirius_bench::experiments::granularity;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running switching-granularity sweep at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    granularity::table(&granularity::run(cli.scale, 0.75, 1, cli.jobs)).emit("granularity");
}
