//! One Fig. 9 load point at a chosen scale, printing each system's row as
//! soon as it finishes — for paper-scale validation where the full sweep
//! is hours of wall clock on a shared core.
//!
//! Usage: `fig9_point [--full] <load-percent>`
use sirius_bench::experiments::fig9::SHORT_FLOW_BYTES;
use sirius_bench::Cli;
use sirius_sim::{CcMode, EsnSim, RunMetrics, SiriusSim};

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale;
    let load = cli
        .rest
        .iter()
        .filter_map(|a| a.parse::<f64>().ok())
        .next()
        .unwrap_or(50.0)
        / 100.0;
    eprintln!("fig9 point: {scale:?} scale, load {:.0}%", load * 100.0);
    let wl = scale.workload(load, 1).generate();
    let horizon = wl.last().unwrap().arrival;
    let net = scale.network();
    let servers = net.total_servers() as u64;
    let t0 = std::time::Instant::now();
    let report = |name: &str, m: &RunMetrics| {
        println!(
            "load={:.0}% system={:<18} fct_p99_ms={} goodput={:.3} [{:?}]",
            load * 100.0,
            name,
            m.fct_percentile(99.0, SHORT_FLOW_BYTES)
                .map(|d| format!("{:.5}", d.as_ms_f64()))
                .unwrap_or("-".into()),
            m.goodput_within(horizon, servers, scale.server_share()),
            t0.elapsed(),
        );
    };
    let cfg = scale.sim_config(net.clone(), &wl, 1);
    report("Sirius", &SiriusSim::new(cfg.clone()).run(&wl));
    report(
        "Sirius (Ideal)",
        &SiriusSim::new(cfg.with_mode(CcMode::Ideal)).run(&wl),
    );
    report("ESN (Ideal)", &EsnSim::new(scale.esn(1.0)).run(&wl));
    report("ESN-OSUB (Ideal)", &EsnSim::new(scale.esn(3.0)).run(&wl));
}
