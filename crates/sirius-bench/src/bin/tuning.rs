//! Regenerates the §3.2/§4.5 laser-tuning tables.
use sirius_bench::experiments::tuning;
use sirius_bench::Cli;

fn main() {
    // Analytic tables — no sweep; parse the standard flags anyway so the
    // CLI surface is uniform across every harness binary.
    let _ = Cli::parse();
    tuning::tuning_table(7).emit("tuning");
    tuning::dsdbr_cdf_table().emit("tuning_cdf");
    tuning::bank_sizing_table().emit("bank_sizing");
}
