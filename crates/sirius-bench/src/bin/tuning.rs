//! Regenerates the §3.2/§4.5 laser-tuning tables.
use sirius_bench::experiments::tuning;

fn main() {
    tuning::tuning_table(7).emit("tuning");
    tuning::dsdbr_cdf_table().emit("tuning_cdf");
    tuning::bank_sizing_table().emit("bank_sizing");
}
