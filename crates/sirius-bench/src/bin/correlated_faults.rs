//! Regenerates the correlated-failure-domain and Byzantine-data-plane
//! evaluation: laser-bank/AWGR blast radius under column-granular vs
//! whole-node repair, and forgery damage bounds under the RX filter.
use sirius_bench::experiments::correlated_faults;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running correlated_faults at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    let points = correlated_faults::run(cli.scale, 1, cli.jobs);
    correlated_faults::emit(&points, cli.scale);
}
