//! Regenerates the congestion-control ablation table.
use sirius_bench::experiments::{ablation, fig9};
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running CC ablation at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    ablation::table(&ablation::run(cli.scale, &fig9::LOADS, 1, cli.jobs)).emit("ablation");
}
