//! Regenerates the congestion-control ablation table.
use sirius_bench::experiments::{ablation, fig9};
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running CC ablation at {scale:?} scale...");
    ablation::table(&ablation::run(scale, &fig9::LOADS, 1)).emit("ablation");
}
