//! Regenerates Fig. 9: FCT and goodput vs load for all four systems.
//! `--full` runs the paper-scale deployment (minutes).
use sirius_bench::experiments::fig9;
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Fig 9 at {scale:?} scale...");
    let points = fig9::run(scale, 1);
    let (fct, gp) = fig9::tables(&points);
    fct.emit("fig9a");
    gp.emit("fig9b");
}
