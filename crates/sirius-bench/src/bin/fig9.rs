//! Regenerates Fig. 9: FCT and goodput vs load for all four systems.
//! `--full` runs the paper-scale deployment (minutes); `--jobs N` fans
//! the (system, load) points across workers.
use sirius_bench::experiments::fig9;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running Fig 9 at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    let points = fig9::run(cli.scale, 1, cli.jobs);
    let (fct, gp) = fig9::tables(&points);
    fct.emit("fig9a");
    gp.emit("fig9b");
}
