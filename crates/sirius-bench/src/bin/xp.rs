//! Runs every experiment in sequence (the full paper reproduction).
//!
//! * `--full` — paper scale;
//! * `--jobs N` — sweep workers per experiment (env `SIRIUS_JOBS`,
//!   default: all cores); every sweep collects results in submission
//!   order, so the tables and CSVs are byte-identical to `--jobs 1`;
//! * `--timing` — run the whole suite twice, serial then parallel, and
//!   emit `results/BENCH_xp_wall.json` with per-experiment wall-clock
//!   and the end-to-end speedup;
//! * `--live` — also run the live-process sync measurement (spawns real
//!   `sirius-sync-node` processes over UDP loopback). Off by default:
//!   it measures the host's scheduling latency, so it is neither
//!   deterministic nor machine-independent like the rest of the suite.
use sirius_bench::experiments::*;
use sirius_bench::wall::{ExperimentWall, WallReport};
use sirius_bench::{Cli, Scale};
use std::time::Instant;

/// One named experiment: the closure takes the sweep worker count.
type Experiment = (&'static str, Box<dyn Fn(usize)>);

/// The suite as named closures so the driver can time each experiment.
/// Analytic tables (fig2/fig6/fig8/tuning) and the single-run sync
/// measurement have no sweep to fan out, but are timed all the same so
/// the wall report covers the entire reproduction. `shards` (from
/// `--shards`) reaches the experiments whose wall clock is dominated by
/// a few long runs rather than sweep width — today that is fig13.
fn suite(scale: Scale, shards: Option<usize>, live: bool) -> Vec<Experiment> {
    let mut xs: Vec<Experiment> = Vec::new();
    xs.push((
        "analytic",
        Box::new(|_| {
            fig2::fig2a_table().emit("fig2a");
            fig2::fig2b_table().emit("fig2b");
            fig6::fig6a_table().emit("fig6a");
            fig6::fig6b_table().emit("fig6b");
            fig6::variants_table().emit("s5_variants");
            fig8::fig8a_table(7).emit("fig8a");
            fig8::fig8b_table(7).emit("fig8b");
            fig8::fig8c_table(7).emit("fig8c");
            fig8::fig8d_table().emit("fig8d");
            tuning::tuning_table(7).emit("tuning");
            tuning::dsdbr_cdf_table().emit("tuning_cdf");
            tuning::bank_sizing_table().emit("bank_sizing");
        }),
    ));
    xs.push((
        "sync",
        Box::new(move |_| {
            let epochs = if scale == Scale::Paper {
                2_000_000
            } else {
                200_000
            };
            sync::sync_table(epochs).emit("sync");
        }),
    ));
    xs.push((
        "fig9",
        Box::new(move |jobs| {
            let points = fig9::run(scale, 1, jobs);
            let (fct, gp) = fig9::tables(&points);
            fct.emit("fig9a");
            gp.emit("fig9b");
        }),
    ));
    xs.push((
        "fig10",
        Box::new(move |jobs| fig10::table(&fig10::run(scale, &fig9::LOADS, 1, jobs)).emit("fig10")),
    ));
    xs.push((
        "fig11",
        Box::new(move |jobs| {
            fig11::table(&fig11::run(scale, 1.0, 1, jobs)).emit("fig11");
            fig11::table(&fig11::run(scale, 0.75, 1, jobs)).emit("fig11_l75");
        }),
    ));
    xs.push((
        "fig12",
        Box::new(move |jobs| fig12::table(&fig12::run(scale, &fig9::LOADS, 1, jobs)).emit("fig12")),
    ));
    xs.push((
        "fig13",
        Box::new(move |jobs| fig13::table(&fig13::run(scale, 0.5, 1, jobs, shards)).emit("fig13")),
    ));
    xs.push((
        "ablation",
        Box::new(move |jobs| {
            ablation::table(&ablation::run(scale, &fig9::LOADS, 1, jobs)).emit("ablation")
        }),
    ));
    xs.push((
        "fault_tolerance",
        Box::new(move |jobs| {
            let ft = fault_tolerance::run(scale, 1, jobs);
            let (det, gp, grey) = fault_tolerance::tables(&ft);
            det.emit("fault_detect");
            gp.emit("fault_goodput");
            grey.emit("fault_grey");
        }),
    ));
    xs.push((
        "repair_granularity",
        Box::new(move |jobs| {
            let n = scale.network().nodes as u32;
            let rg = repair_granularity::run(scale, 1, &repair_granularity::k_sweep(n), jobs);
            repair_granularity::table(&rg).emit("repair_granularity");
        }),
    ));
    xs.push((
        "correlated_faults",
        Box::new(move |jobs| {
            let pts = correlated_faults::run(scale, 1, jobs);
            correlated_faults::emit(&pts, scale);
        }),
    ));
    xs.push((
        "relay_burst",
        Box::new(move |jobs| {
            let fct = relay_burst::run_fct(
                scale,
                0.75,
                1,
                &relay_burst::BURSTS,
                &relay_burst::GUARDS_NS,
                jobs,
            );
            relay_burst::fct_table(&fct).emit("relay_burst_fct");
            let sat = relay_burst::run_saturation(scale, 1, &relay_burst::BURSTS, jobs);
            relay_burst::sat_table(&sat).emit("relay_burst_sat");
        }),
    ));
    xs.push((
        "sim_throughput",
        Box::new(move |jobs| {
            let tp = sim_throughput::run(scale, 1, jobs, 1);
            sim_throughput::table(&tp).emit("sim_throughput");
            sim_throughput::emit_json(&tp, scale);
        }),
    ));
    xs.push((
        "scale_series",
        Box::new(move |jobs| {
            // High-memory sweep: each concurrent point holds a full
            // deployment's node state, so the suite-wide --jobs is
            // capped here rather than letting the largest points
            // multiply.
            let jobs = jobs.min(scale_series::jobs_cap(scale));
            let pts = scale_series::run(scale, 1, jobs, shards.unwrap_or(1));
            scale_series::table(&pts).emit("scale_series");
            scale_series::emit_json(&pts, scale, jobs);
        }),
    ));
    if live {
        xs.push((
            "live_sync",
            Box::new(move |_| {
                // Opt-in (--live): spawns real OS processes and measures
                // wall-clock latency, so it is neither deterministic nor
                // machine-independent like the rest of the suite.
                let cfg = live_sync::LiveConfig::for_scale(scale);
                match live_sync::run(&cfg) {
                    Ok(res) => {
                        live_sync::table(&res).emit("live_sync");
                        live_sync::emit_json(&res, scale);
                    }
                    Err(e) => eprintln!("warning: live_sync skipped: {e}"),
                }
            }),
        ));
    }
    xs
}

/// Run the whole suite once at a worker count, returning per-experiment
/// wall-clock seconds in suite order.
fn run_suite(
    scale: Scale,
    jobs: usize,
    shards: Option<usize>,
    live: bool,
) -> Vec<(&'static str, f64)> {
    suite(scale, shards, live)
        .into_iter()
        .map(|(name, exp)| {
            let t0 = Instant::now();
            exp(jobs);
            (name, t0.elapsed().as_secs_f64())
        })
        .collect()
}

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale;
    if cli.timing {
        eprintln!(
            "=== Sirius paper reproduction, {scale:?} scale: timing serial vs --jobs {} ===",
            cli.jobs
        );
        let serial = run_suite(scale, 1, cli.shards, cli.live);
        let parallel = run_suite(scale, cli.jobs, cli.shards, cli.live);
        let report = WallReport {
            scale,
            jobs: cli.jobs,
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            experiments: serial
                .into_iter()
                .zip(parallel)
                .map(|((name, s), (_, p))| ExperimentWall {
                    name,
                    serial_secs: s,
                    parallel_secs: p,
                })
                .collect(),
        };
        report.emit();
        eprintln!(
            "=== done; serial {:.1}s vs --jobs {} {:.1}s ({}x); CSVs + BENCH_xp_wall.json under results/ ===",
            report.serial_total_secs(),
            report.jobs,
            report.parallel_total_secs(),
            report
                .total_speedup()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    } else {
        eprintln!(
            "=== Sirius paper reproduction, {scale:?} scale, --jobs {} ===",
            cli.jobs
        );
        run_suite(scale, cli.jobs, cli.shards, cli.live);
        eprintln!("=== done; CSVs under results/ ===");
    }
}
