//! Runs every experiment in sequence (the full paper reproduction).
//! Pass `--full` for paper scale.
use sirius_bench::experiments::*;
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("=== Sirius paper reproduction, {scale:?} scale ===");
    fig2::fig2a_table().emit("fig2a");
    fig2::fig2b_table().emit("fig2b");
    fig6::fig6a_table().emit("fig6a");
    fig6::fig6b_table().emit("fig6b");
    fig6::variants_table().emit("s5_variants");
    fig8::fig8a_table(7).emit("fig8a");
    fig8::fig8b_table(7).emit("fig8b");
    fig8::fig8c_table(7).emit("fig8c");
    fig8::fig8d_table().emit("fig8d");
    tuning::tuning_table(7).emit("tuning");
    tuning::dsdbr_cdf_table().emit("tuning_cdf");
    tuning::bank_sizing_table().emit("bank_sizing");
    let epochs = if scale == Scale::Paper {
        2_000_000
    } else {
        200_000
    };
    sync::sync_table(epochs).emit("sync");
    let points = fig9::run(scale, 1);
    let (fct, gp) = fig9::tables(&points);
    fct.emit("fig9a");
    gp.emit("fig9b");
    fig10::table(&fig10::run(scale, &fig9::LOADS, 1)).emit("fig10");
    fig11::table(&fig11::run(scale, 1.0, 1)).emit("fig11");
    fig11::table(&fig11::run(scale, 0.75, 1)).emit("fig11_l75");
    fig12::table(&fig12::run(scale, &fig9::LOADS, 1)).emit("fig12");
    fig13::table(&fig13::run(scale, 0.5, 1)).emit("fig13");
    ablation::table(&ablation::run(scale, &fig9::LOADS, 1)).emit("ablation");
    let ft = fault_tolerance::run(scale, 1);
    let (det, gp, grey) = fault_tolerance::tables(&ft);
    det.emit("fault_detect");
    gp.emit("fault_goodput");
    grey.emit("fault_grey");
    let n = scale.network().nodes as u32;
    let rg = repair_granularity::run(scale, 1, &repair_granularity::k_sweep(n));
    repair_granularity::table(&rg).emit("repair_granularity");
    let rb_fct = relay_burst::run_fct(
        scale,
        0.75,
        1,
        &relay_burst::BURSTS,
        &relay_burst::GUARDS_NS,
    );
    relay_burst::fct_table(&rb_fct).emit("relay_burst_fct");
    let rb_sat = relay_burst::run_saturation(scale, 1, &relay_burst::BURSTS);
    relay_burst::sat_table(&rb_sat).emit("relay_burst_sat");
    let tp = sim_throughput::run(scale, 1);
    sim_throughput::table(&tp).emit("sim_throughput");
    sim_throughput::emit_json(&tp, scale);
    eprintln!("=== done; CSVs under results/ ===");
}
