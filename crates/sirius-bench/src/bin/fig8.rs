//! Regenerates Fig. 8a-8d (fast-switching demonstration).
use sirius_bench::experiments::fig8;
use sirius_bench::Cli;

fn main() {
    // Seeded single measurements — no sweep; parse the standard flags
    // anyway so the CLI surface is uniform across every harness binary.
    let _ = Cli::parse();
    fig8::fig8a_table(7).emit("fig8a");
    fig8::fig8b_table(7).emit("fig8b");
    fig8::fig8c_table(7).emit("fig8c");
    fig8::fig8d_table().emit("fig8d");
}
