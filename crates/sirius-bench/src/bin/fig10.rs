//! Regenerates Fig. 10: the queue-threshold (Q) sweep.
use sirius_bench::experiments::{fig10, fig9};
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Fig 10 at {scale:?} scale...");
    let points = fig10::run(scale, &fig9::LOADS, 1);
    fig10::table(&points).emit("fig10");
}
