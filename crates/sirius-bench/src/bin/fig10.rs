//! Regenerates Fig. 10: the queue-threshold (Q) sweep.
use sirius_bench::experiments::{fig10, fig9};
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running Fig 10 at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    let points = fig10::run(cli.scale, &fig9::LOADS, 1, cli.jobs);
    fig10::table(&points).emit("fig10");
}
