use sirius_bench::Cli;
use sirius_sim::{CcMode, SiriusSim};
fn main() {
    let scale = Cli::parse().scale;
    let wl = scale.workload(0.5, 1).generate();
    let cfg = scale.sim_config(scale.network(), &wl, 1);
    let m = SiriusSim::new(cfg.clone()).run(&wl);
    let h = wl.last().unwrap().arrival;
    let net = scale.network();
    println!(
        "protocol: fct99={:?} goodput={:.3}",
        m.fct_percentile(99.0, 100_000),
        m.goodput_within(h, net.total_servers() as u64, scale.server_share())
    );
    println!("cc: {:?}", m.cc);
    println!(
        "peaks: local={} fabric={} reorder={}",
        m.peak_node_local_cells, m.peak_node_fabric_cells, m.peak_reorder_flow_bytes
    );
    let mi = SiriusSim::new(cfg.with_mode(CcMode::Ideal)).run(&wl);
    println!(
        "ideal: fct99={:?} peaks local={} fabric={}",
        mi.fct_percentile(99.0, 100_000),
        mi.peak_node_local_cells,
        mi.peak_node_fabric_cells
    );
}
