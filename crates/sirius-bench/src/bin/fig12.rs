//! Regenerates Fig. 12: goodput vs load for 1x/1.5x/2x uplinks.
use sirius_bench::experiments::{fig12, fig9};
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running Fig 12 at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    let points = fig12::run(cli.scale, &fig9::LOADS, 1, cli.jobs);
    fig12::table(&points).emit("fig12");
}
