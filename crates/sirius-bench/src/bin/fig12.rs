//! Regenerates Fig. 12: goodput vs load for 1x/1.5x/2x uplinks.
use sirius_bench::experiments::{fig12, fig9};
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Fig 12 at {scale:?} scale...");
    let points = fig12::run(scale, &fig9::LOADS, 1);
    fig12::table(&points).emit("fig12");
}
