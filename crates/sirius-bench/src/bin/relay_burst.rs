//! Regenerates the RELAY_BURST sensitivity sweep (ROADMAP open item):
//! short-flow tail FCT against the fig. 11 guardband axis, plus
//! saturation goodput and the §4.3 fabric-occupancy bound per burst.
use sirius_bench::experiments::relay_burst;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running RELAY_BURST sweep at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    let fct = relay_burst::run_fct(
        cli.scale,
        0.75,
        1,
        &relay_burst::BURSTS,
        &relay_burst::GUARDS_NS,
        cli.jobs,
    );
    relay_burst::fct_table(&fct).emit("relay_burst_fct");
    let sat = relay_burst::run_saturation(cli.scale, 1, &relay_burst::BURSTS, cli.jobs);
    relay_burst::sat_table(&sat).emit("relay_burst_sat");
}
