//! Prints the paper's Fig. 5b network schedule table for the four-node
//! example topology (and any other geometry via --nodes/--gratings).
use sirius_bench::Cli;
use sirius_bench::Table;
use sirius_core::schedule::{Schedule, SlotInEpoch};
use sirius_core::topology::{NodeId, Topology, UplinkId};
use sirius_core::SiriusConfig;

fn main() {
    // Fixed table — no sweep; parse the standard flags anyway so the
    // CLI surface is uniform across every harness binary.
    let _ = Cli::parse();
    let cfg = SiriusConfig::four_node_prototype();
    let topo = Topology::new(&cfg);
    let sched = Schedule::new(&cfg);
    let slots = sched.epoch_slots() as u16;
    let mut headers = vec!["source (node,port)".to_string()];
    for t in 0..slots {
        headers.push(format!("slot{} wl", t + 1));
        headers.push(format!("slot{} dst", t + 1));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t_out = Table::new(
        "Fig 5b: network schedule (4 nodes x 2 uplinks, 2-port gratings)",
        &hdr_refs,
    );
    for i in 0..topo.nodes() as u32 {
        for u in 0..topo.uplinks() as u16 {
            let mut row = vec![format!("({},{})", i + 1, u + 1)];
            for t in 0..slots {
                let wl = sched.wavelength(SlotInEpoch(t));
                let d = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                row.push(((b'A' + wl.0 as u8) as char).to_string());
                row.push(format!("({},{})", d.0 + 1, u + 1));
            }
            t_out.row(row);
        }
    }
    t_out.emit("fig5b");
}
