//! Regenerates Fig. 13: FCT and goodput vs mean flow size.
use sirius_bench::experiments::fig13;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running Fig 13 at {:?} scale, --jobs {}, shards {:?}...",
        cli.scale, cli.jobs, cli.shards
    );
    let points = fig13::run(cli.scale, 0.5, 1, cli.jobs, cli.shards);
    fig13::table(&points).emit("fig13");
}
