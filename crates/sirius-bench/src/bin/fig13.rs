//! Regenerates Fig. 13: FCT and goodput vs mean flow size.
use sirius_bench::experiments::fig13;
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Fig 13 at {scale:?} scale...");
    let points = fig13::run(scale, 0.5, 1);
    fig13::table(&points).emit("fig13");
}
