//! Simulator throughput harness: wall-clock cells/sec and epochs/sec for
//! Protocol/Ideal/Greedy. Pass `--full` for paper_sim scale (the
//! configuration the ≥2× refactor bar is measured at), `--smoke` for the
//! harness self-test size. Emits `results/sim_throughput.csv` and
//! `results/BENCH_sim_throughput.json`.
use sirius_bench::experiments::sim_throughput;
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("=== simulator throughput, {scale:?} scale ===");
    // Paper scale is the acceptance measurement: best-of-3 to shed
    // one-sided OS noise. The smaller scales are smoke checks.
    let repeats = if scale == Scale::Paper { 3 } else { 1 };
    let pts = sim_throughput::run_best(scale, 1, repeats);
    sim_throughput::table(&pts).emit("sim_throughput");
    sim_throughput::emit_json(&pts, scale);
}
