//! Simulator throughput harness: wall-clock cells/sec and epochs/sec for
//! Protocol/Ideal/Greedy. Pass `--full` for paper_sim scale (the
//! configuration the ≥2× refactor bar is measured at), `--smoke` for the
//! harness self-test size. Emits `results/sim_throughput.csv` and
//! `results/BENCH_sim_throughput.json`.
use sirius_bench::experiments::sim_throughput;
use sirius_bench::{Cli, Scale};

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale;
    // Paper scale is the acceptance measurement: best-of-3 to shed
    // one-sided OS noise, and always serial — concurrent modes contend
    // for cores and would inflate each other's wall clock, corrupting
    // the longitudinal series. The smaller scales are smoke checks of
    // the harness path, where `--jobs` parallelism is exercised.
    let (repeats, jobs) = if scale == Scale::Paper {
        if cli.jobs > 1 {
            eprintln!("note: paper-scale throughput is a wall-clock measurement; forcing --jobs 1");
        }
        (3, 1)
    } else {
        (1, cli.jobs)
    };
    eprintln!("=== simulator throughput, {scale:?} scale, --jobs {jobs} ===");
    let pts = sim_throughput::run_best(scale, 1, repeats, jobs);
    sim_throughput::table(&pts).emit("sim_throughput");
    sim_throughput::emit_json(&pts, scale);
}
