//! Simulator throughput harness: wall-clock cells/sec and epochs/sec for
//! Protocol/Ideal/Greedy. Pass `--full` for paper_sim scale (the
//! configuration the ≥2× refactor bar is measured at), `--smoke` for the
//! harness self-test size, `--shards N` to measure the sharded slot
//! engine — which records a serial (`shards = 1`) baseline *and* the
//! sharded leg in the same artifact, digest-compared. Emits
//! `results/sim_throughput.csv` and `results/BENCH_sim_throughput.json`.
use sirius_bench::experiments::sim_throughput;
use sirius_bench::{Cli, Scale};

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale;
    // Paper scale is the acceptance measurement: best-of-3 to shed
    // one-sided OS noise, and always a single sweep job — concurrent
    // modes contend for cores and would inflate each other's wall clock,
    // corrupting the longitudinal series. (`--shards` is intra-run
    // parallelism and is exactly what this measurement is for.) The
    // smaller scales are smoke checks of the harness path, where
    // `--jobs` parallelism is exercised.
    let (repeats, jobs) = if scale == Scale::Paper {
        if cli.jobs > 1 {
            eprintln!("note: paper-scale throughput is a wall-clock measurement; forcing --jobs 1");
        }
        (3, 1)
    } else {
        (1, cli.jobs)
    };
    let shards = cli.shards.unwrap_or(1);
    eprintln!("=== simulator throughput, {scale:?} scale, --jobs {jobs}, --shards {shards} ===");
    // Serial baseline first; with --shards N > 1 the sharded leg rides in
    // the same artifact so the serial-vs-sharded ratio (and the digest
    // equality CI checks) need no cross-file correlation.
    let mut pts = sim_throughput::run_best(scale, 1, repeats, jobs, 1);
    if shards > 1 {
        pts.extend(sim_throughput::run_best(scale, 1, repeats, jobs, shards));
        for mode in ["protocol", "greedy"] {
            let serial = pts.iter().find(|p| p.mode == mode && p.shards == 1);
            let sharded = pts.iter().find(|p| p.mode == mode && p.shards > 1);
            if let (Some(a), Some(b)) = (serial, sharded) {
                assert_eq!(
                    a.digest, b.digest,
                    "{mode}: sharded digest diverged from serial"
                );
            }
        }
    }
    sim_throughput::table(&pts).emit("sim_throughput");
    sim_throughput::emit_json(&pts, scale);
}
