//! Regenerates the §6 time-synchronization measurement.
use sirius_bench::experiments::sync;
use sirius_bench::{Cli, Scale};

fn main() {
    let epochs = match Cli::parse().scale {
        Scale::Paper => 2_000_000,
        Scale::Quick => 200_000,
        Scale::Smoke => 30_000,
    };
    sync::sync_table(epochs).emit("sync");
}
