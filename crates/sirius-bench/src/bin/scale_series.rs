//! Scale-out series harness: N ∈ {128..4096} nodes, flow counts into
//! the millions, every point on the streaming (memory-bounded) engine.
//! Pass `--smoke` for the two-point CI gate size, `--full` for the
//! 4096-node / 2M-flow series, `--shards N` for intra-run slot-engine
//! parallelism (digest-identical to serial). Emits
//! `results/scale_series.csv` and `results/BENCH_scale_series.json`
//! with the residency and RSS gate verdicts baked in.
use sirius_bench::experiments::scale_series;
use sirius_bench::{Cli, MemoryClass};

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale;
    // The largest points hold the full per-node deployment state per
    // concurrent sweep job; the memory class caps --jobs accordingly
    // (and the cap also keeps the per-point VmHWM readings honest).
    let jobs = cli.effective_jobs(MemoryClass::HighMemory {
        cap: scale_series::jobs_cap(scale),
    });
    let shards = cli.shards.unwrap_or(1);
    eprintln!("=== scale-out series, {scale:?} scale, --jobs {jobs}, --shards {shards} ===");
    let pts = scale_series::run(scale, 1, jobs, shards);
    let (resident_ok, rss_sublinear) = scale_series::gates(&pts);
    scale_series::table(&pts).emit("scale_series");
    scale_series::emit_json(&pts, scale, jobs);
    eprintln!("resident_ok={resident_ok} rss_sublinear={rss_sublinear:?}");
    if !resident_ok {
        eprintln!("error: resident flow state exceeded its bound; see table above");
        std::process::exit(1);
    }
}
