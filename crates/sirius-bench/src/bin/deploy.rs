//! The §4.1 deployment-sizing table: the paper's headline deployment
//! points reproduced by the planner in `sirius_core::deployment`.
use sirius_bench::Cli;
use sirius_bench::Table;
use sirius_core::deployment::{plan, DeploymentKind};
use sirius_core::units::{Duration, Rate};

fn main() {
    // Fixed table — no sweep; parse the standard flags anyway so the
    // CLI surface is uniform across every harness binary.
    let _ = Cli::parse();
    let slot = Duration::from_ps(99_920);
    let mut t = Table::new(
        "S4.1 deployment points (50 Gbps channels, 100 ns slots, 8-way laser sharing)",
        &[
            "deployment",
            "nodes",
            "uplinks",
            "grating_ports",
            "gratings",
            "epoch_us",
            "laser_chips",
            "bisection_Tbps",
        ],
    );
    let rows = [
        (
            "GPU cluster (server-based)",
            DeploymentKind::ServerBased,
            4_800usize,
            48usize,
        ),
        ("max rack-based DC", DeploymentKind::RackBased, 25_600, 256),
        (
            "large DC, 16-port gratings",
            DeploymentKind::RackBased,
            4_096,
            256,
        ),
        ("paper §7 simulation", DeploymentKind::RackBased, 128, 8),
    ];
    for (name, kind, nodes, uplinks) in rows {
        let p = plan(kind, nodes, uplinks, Rate::from_gbps(50), slot, 8).unwrap();
        t.row(vec![
            name.to_string(),
            p.nodes.to_string(),
            p.base_uplinks.to_string(),
            p.grating_ports.to_string(),
            p.gratings.to_string(),
            format!("{:.2}", p.epoch.as_us_f64()),
            p.laser_chips_per_node.to_string(),
            format!("{:.1}", p.bisection.as_gbps_f64() / 1000.0),
        ]);
    }
    t.emit("deployments");
}
