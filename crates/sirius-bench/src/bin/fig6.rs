//! Regenerates Fig. 6a (power) and Fig. 6b (cost) plus the §5 variants.
use sirius_bench::experiments::fig6;
use sirius_bench::Cli;

fn main() {
    // Analytic tables — no sweep; parse the standard flags anyway so the
    // CLI surface is uniform across every harness binary.
    let _ = Cli::parse();
    fig6::fig6a_table().emit("fig6a");
    fig6::fig6b_table().emit("fig6b");
    fig6::variants_table().emit("s5_variants");
}
