//! Regenerates the repair-granularity comparison: k dead TX columns
//! under link-granular column omission vs the §4.5 whole-node rule.
use sirius_bench::experiments::repair_granularity;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running repair granularity at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    let n = repair_granularity::run(
        cli.scale,
        1,
        &repair_granularity::k_sweep(cli.scale.network().nodes as u32),
        cli.jobs,
    );
    repair_granularity::table(&n).emit("repair_granularity");
}
