//! Regenerates the repair-granularity comparison: k dead TX columns
//! under link-granular column omission vs the §4.5 whole-node rule.
use sirius_bench::experiments::repair_granularity;
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running repair granularity at {scale:?} scale...");
    let n = repair_granularity::run(
        scale,
        1,
        &repair_granularity::k_sweep(scale.network().nodes as u32),
    );
    repair_granularity::table(&n).emit("repair_granularity");
}
