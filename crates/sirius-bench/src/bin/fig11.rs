//! Regenerates Fig. 11: FCT vs guardband at L = 100%.
use sirius_bench::experiments::fig11;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running Fig 11 at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    // The paper runs L = 100%; at saturation the protocol accumulates
    // backlog that flattens the tail, so we also emit a 75% sweep where
    // the epoch-length effect is visible in isolation.
    let points = fig11::run(cli.scale, 1.0, 1, cli.jobs);
    fig11::table(&points).emit("fig11");
    let points75 = fig11::run(cli.scale, 0.75, 1, cli.jobs);
    fig11::table(&points75).emit("fig11_l75");
}
