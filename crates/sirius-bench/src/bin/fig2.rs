//! Regenerates Fig. 2a (scale tax) and Fig. 2b (CMOS scaling).
use sirius_bench::experiments::fig2;
use sirius_bench::Cli;

fn main() {
    // Analytic tables — no sweep; parse the standard flags anyway so the
    // CLI surface is uniform across every harness binary.
    let _ = Cli::parse();
    fig2::fig2a_table().emit("fig2a");
    fig2::fig2b_table().emit("fig2b");
}
