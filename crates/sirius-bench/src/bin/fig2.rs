//! Regenerates Fig. 2a (scale tax) and Fig. 2b (CMOS scaling).
use sirius_bench::experiments::fig2;

fn main() {
    fig2::fig2a_table().emit("fig2a");
    fig2::fig2b_table().emit("fig2b");
}
