//! Live-process sync measurement: spawn N `sirius-sync-node` OS
//! processes over UDP loopback — the same `SyncEngine` the simulator
//! drives, on real sockets and a disciplined monotonic clock — and emit
//! `results/BENCH_live_sync.json` comparing the achieved |offset|
//! distribution against the in-sim prediction for the same geometry.
//! `--smoke` is the CI gate size (4 nodes, ~3 s); `--full` runs 8 nodes
//! for ~30 s. Exits non-zero when the cluster fails to lock.
use sirius_bench::experiments::live_sync;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    let cfg = live_sync::LiveConfig::for_scale(cli.scale);
    eprintln!(
        "=== live sync: {} sirius-sync-node processes, {} epochs x {} us over UDP loopback ===",
        cfg.nodes, cfg.epochs, cfg.epoch_us
    );
    match live_sync::run(&cfg) {
        Ok(res) => {
            live_sync::table(&res).emit("live_sync");
            live_sync::emit_json(&res, cli.scale);
            eprintln!(
                "locked={} applied={}/{} p99={:.1} us (sim prediction: {:.1} ps)",
                res.locked(),
                res.applied_total(),
                res.applied_expected(),
                res.achieved_p99_ps() / 1e6,
                res.sim_max_deviation_ps
            );
            if !res.locked() {
                eprintln!("error: live cluster failed to lock; see table above");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: live sync run failed: {e}");
            std::process::exit(1);
        }
    }
}
