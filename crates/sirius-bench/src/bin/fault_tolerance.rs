//! Regenerates the §4.5 fault-tolerance evaluation: crash detection
//! latency, goodput vs failed racks, grey-link localization.
use sirius_bench::experiments::fault_tolerance;
use sirius_bench::Cli;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "running §4.5 fault tolerance at {:?} scale, --jobs {}...",
        cli.scale, cli.jobs
    );
    let points = fault_tolerance::run(cli.scale, 1, cli.jobs);
    let (det, gp, grey) = fault_tolerance::tables(&points);
    det.emit("fault_detect");
    gp.emit("fault_goodput");
    grey.emit("fault_grey");
}
