//! Regenerates the §4.5 fault-tolerance evaluation: crash detection
//! latency, goodput vs failed racks, grey-link localization.
use sirius_bench::experiments::fault_tolerance;
use sirius_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running §4.5 fault tolerance at {scale:?} scale...");
    let points = fault_tolerance::run(scale, 1);
    let (det, gp, grey) = fault_tolerance::tables(&points);
    det.emit("fault_detect");
    gp.emit("fault_goodput");
    grey.emit("fault_grey");
}
