//! Deterministic parallel sweep executor.
//!
//! Every figure sweep in this harness is a list of independent,
//! single-threaded, seeded simulation runs — embarrassingly parallel
//! work that the harness used to execute strictly serially. [`Sweep`]
//! turns each fan-out loop into a list of labelled job closures and runs
//! them on `--jobs N` workers (env `SIRIUS_JOBS`, default
//! [`std::thread::available_parallelism`]), returning results **in
//! submission order** so every table, CSV, and run digest is
//! byte-identical to the serial run.
//!
//! Design constraints, in order:
//!
//! * **Determinism.** Results are written into per-job slots indexed by
//!   submission position; worker scheduling can reorder *execution* but
//!   never *collection*. `jobs = 1` takes a same-thread fast path that
//!   spawns nothing at all, so the serial harness is a true no-op
//!   conversion, not "a thread pool of one".
//! * **No dependencies.** The container is hermetic (vendored crates
//!   only), so the pool is `std` only: [`std::thread::scope`] plus an
//!   atomic work index. No channels, no rayon.
//! * **Panic containment.** A panicking job must fail the sweep with its
//!   point label, after the surviving workers drain the remaining jobs —
//!   never a deadlock, never silently abandoned siblings. Workers catch
//!   unwinds per job; the caller re-panics with every failed label once
//!   the scope has joined.
//! * **Bounded memory.** Jobs are closures: point *descriptions* are
//!   enumerated up front, but each closure generates its own workload
//!   when it runs, so peak memory scales with `jobs`, not sweep size.
//!
//! # Worker-count precedence
//!
//! `--jobs N` on the command line beats the `SIRIUS_JOBS` environment
//! variable, which beats [`std::thread::available_parallelism`] (the
//! fallback when neither is set, or 1 if even that is unavailable).
//! [`Cli::parse`](crate::cli::Cli) implements the first hop (it only
//! consults [`default_jobs`] when `--jobs` is absent); this module
//! implements the rest. A malformed `SIRIUS_JOBS` is ignored with a
//! warning printed **once per process** — the parse is cached, so a
//! harness building one sweep per experiment (`xp` builds dozens) does
//! not spam the warning per sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Worker count for a sweep when `--jobs` is absent: `SIRIUS_JOBS` if
/// set to an integer ≥ 1, else the machine's available parallelism, else
/// 1 (see the module docs for the full precedence). Cached on first
/// call; a malformed `SIRIUS_JOBS` warns exactly once per process.
pub fn default_jobs() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Ok(v) = std::env::var("SIRIUS_JOBS") {
            match parse_env_jobs(&v) {
                Ok(n) => return n,
                Err(warning) => eprintln!("{warning}"),
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parse a `SIRIUS_JOBS` value; `Err` carries the (once-per-process)
/// warning text. Pure, so the rejection surface is testable without
/// touching the process environment or the [`default_jobs`] cache.
fn parse_env_jobs(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "warning: ignoring SIRIUS_JOBS={v:?} (want an integer >= 1)"
        )),
    }
}

/// Wall-clock for one executed job, by label, in submission order.
#[derive(Debug, Clone)]
pub struct JobTiming {
    pub label: String,
    pub wall: Duration,
}

type JobFn<R> = Box<dyn FnOnce() -> R + Send + 'static>;
/// What one executed job leaves behind: its result (or panic text) and
/// its wall-clock.
type Outcome<R> = (Result<R, String>, Duration);

/// An ordered list of labelled jobs. Experiments `push` one closure per
/// sweep point and `run` the lot; results come back in `push` order.
pub struct Sweep<R> {
    labels: Vec<String>,
    jobs: Vec<JobFn<R>>,
}

impl<R: Send + 'static> Default for Sweep<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Send + 'static> Sweep<R> {
    pub fn new() -> Sweep<R> {
        Sweep {
            labels: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Queue one job. The label names the sweep point in panic reports
    /// and timing artifacts (e.g. `fig9 load=50% system=Sirius`).
    pub fn push(&mut self, label: impl Into<String>, job: impl FnOnce() -> R + Send + 'static) {
        self.labels.push(label.into());
        self.jobs.push(Box::new(job));
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Execute on `jobs` workers; results in submission order.
    ///
    /// # Panics
    /// If any job panicked, panics with the labels and payloads of every
    /// failed job — after all surviving jobs have completed.
    pub fn run(self, jobs: usize) -> Vec<R> {
        self.run_timed(jobs).0
    }

    /// [`Sweep::run`] plus per-job wall-clock, in submission order.
    pub fn run_timed(self, jobs: usize) -> (Vec<R>, Vec<JobTiming>) {
        let n = self.jobs.len();
        // Never spawn more workers than jobs: `jobs > points` must not
        // leave idle-forever threads (each extra worker would only spin
        // the work index once and exit, but why spawn it at all).
        let workers = jobs.max(1).min(n);
        let outcomes = if workers <= 1 {
            self.jobs
                .into_iter()
                .map(|job| {
                    let t0 = Instant::now();
                    let r = catch_unwind(AssertUnwindSafe(job));
                    (r.map_err(panic_message), t0.elapsed())
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let tasks: Vec<Mutex<Option<JobFn<R>>>> =
                self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let slots: Vec<Mutex<Option<Outcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = tasks[i].lock().unwrap().take().unwrap();
                        let t0 = Instant::now();
                        // Contain the unwind inside the worker: the loop
                        // keeps draining jobs, siblings never notice, and
                        // scope join cannot abort on a worker panic.
                        let r = catch_unwind(AssertUnwindSafe(job));
                        *slots[i].lock().unwrap() = Some((r.map_err(panic_message), t0.elapsed()));
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("worker skipped a job"))
                .collect::<Vec<_>>()
        };

        let mut results = Vec::with_capacity(n);
        let mut timings = Vec::with_capacity(n);
        let mut failures = Vec::new();
        for (label, (outcome, wall)) in self.labels.into_iter().zip(outcomes) {
            match outcome {
                Ok(r) => {
                    results.push(r);
                    timings.push(JobTiming { label, wall });
                }
                Err(msg) => failures.push(format!("  job '{label}': {msg}")),
            }
        }
        if !failures.is_empty() {
            panic!(
                "sweep failed: {} of {} job(s) panicked\n{}",
                failures.len(),
                n,
                failures.join("\n")
            );
        }
        (results, timings)
    }
}

/// Render a panic payload (what `catch_unwind` hands back) as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run a homogeneous sweep built from an iterator of points: one job per
/// point, labelled by `label(point)`, executed by `job(point)`.
pub fn sweep_map<P, R, L, F>(points: impl IntoIterator<Item = P>, label: L, job: F) -> Sweep<R>
where
    P: Clone + Send + 'static,
    R: Send + 'static,
    L: Fn(&P) -> String,
    F: Fn(P) -> R + Clone + Send + 'static,
{
    let mut sweep = Sweep::new();
    for p in points {
        let f = job.clone();
        let lbl = label(&p);
        sweep.push(lbl, move || f(p));
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// 40 jobs that each sleep a scheduling-dependent amount must still
    /// come back in submission order, for every worker count including
    /// the serial fast path.
    #[test]
    fn results_preserve_submission_order_for_all_worker_counts() {
        for jobs in [1usize, 2, 8] {
            let mut sweep = Sweep::new();
            for i in 0..40u64 {
                sweep.push(format!("point {i}"), move || {
                    // Earlier jobs sleep longer: with >1 worker the
                    // *completion* order inverts, so only slot indexing
                    // can produce submission order.
                    std::thread::sleep(Duration::from_micros((40 - i) * 50));
                    i * 3
                });
            }
            let (got, timings) = sweep.run_timed(jobs);
            let want: Vec<u64> = (0..40).map(|i| i * 3).collect();
            assert_eq!(got, want, "order broken at jobs={jobs}");
            assert_eq!(timings.len(), 40);
            assert_eq!(timings[7].label, "point 7");
            assert!(timings.iter().all(|t| t.wall > Duration::ZERO));
        }
    }

    #[test]
    fn panicking_job_reports_its_label_and_siblings_still_run() {
        for jobs in [1usize, 4] {
            let ran: Arc<[AtomicBool; 6]> =
                Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
            let mut sweep = Sweep::new();
            for i in 0..6usize {
                let ran = Arc::clone(&ran);
                sweep.push(format!("point {i}"), move || {
                    ran[i].store(true, Ordering::SeqCst);
                    if i == 3 {
                        panic!("simulated failure at point 3");
                    }
                    i
                });
            }
            let err =
                catch_unwind(AssertUnwindSafe(|| sweep.run(jobs))).expect_err("sweep should fail");
            let msg = panic_message(err);
            assert!(msg.contains("point 3"), "label missing: {msg}");
            assert!(msg.contains("simulated failure"), "payload missing: {msg}");
            // Panic containment: the failure must not have abandoned the
            // jobs queued after it.
            for (i, r) in ran.iter().enumerate() {
                assert!(r.load(Ordering::SeqCst), "job {i} abandoned (jobs={jobs})");
            }
        }
    }

    /// More workers than points: the pool caps at one worker per point
    /// and the sweep still terminates promptly with correct results.
    #[test]
    fn more_workers_than_points_terminates() {
        let mut sweep = Sweep::new();
        for i in 0..3u32 {
            sweep.push(format!("p{i}"), move || i + 100);
        }
        assert_eq!(sweep.run(64), vec![100, 101, 102]);
        // Degenerate cases: empty sweep, single point.
        assert!(Sweep::<u32>::new().run(8).is_empty());
        let mut one = Sweep::new();
        one.push("only", || 7u8);
        assert_eq!(one.run(16), vec![7]);
    }

    #[test]
    fn sweep_map_labels_and_maps_in_order() {
        let sweep = sweep_map([2u64, 5, 9], |p| format!("load={p}"), |p| p * p);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep.run(2), vec![4, 25, 81]);
    }

    #[test]
    fn default_jobs_is_at_least_one_and_stable() {
        let first = default_jobs();
        assert!(first >= 1);
        // The OnceLock cache means repeated sweep construction re-reads
        // nothing (and a malformed env var would have warned only once).
        assert_eq!(default_jobs(), first);
    }

    /// Regression test for the repeated-warning bug: the env parse is a
    /// pure function, so the accept/reject surface is pinned here without
    /// mutating the process environment, and [`default_jobs`] caches its
    /// verdict (exercised above) so the warning cannot repeat.
    #[test]
    fn env_jobs_parse_accepts_counts_and_rejects_garbage_with_one_warning_text() {
        assert_eq!(parse_env_jobs("4"), Ok(4));
        assert_eq!(parse_env_jobs(" 2 "), Ok(2));
        for bad in ["0", "-1", "many", "", "1.5"] {
            let err = parse_env_jobs(bad).expect_err(bad);
            assert!(err.contains("ignoring SIRIUS_JOBS"), "bad warning: {err}");
            assert!(err.contains("integer >= 1"), "bad warning: {err}");
        }
    }
}
