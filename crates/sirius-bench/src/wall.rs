//! Harness wall-clock accounting: the `results/BENCH_xp_wall.json`
//! longitudinal series.
//!
//! `xp --timing` runs the full reproduction twice — once with `--jobs 1`
//! (the serial baseline) and once with the requested worker count — and
//! records per-experiment wall-clock for both legs plus the end-to-end
//! speedup. Like `BENCH_sim_throughput.json` (the *simulator* series),
//! the artifact carries the measurement context so CI uploads are
//! self-describing: scale, worker count, and the host's available
//! parallelism (a `jobs = 4` run on a 1-core container is honest about
//! why it shows no speedup).

use crate::scale::Scale;
use crate::table::write_results_atomic;

/// Wall-clock for one experiment, serial vs parallel leg.
#[derive(Debug, Clone)]
pub struct ExperimentWall {
    pub name: &'static str,
    pub serial_secs: f64,
    pub parallel_secs: f64,
}

impl ExperimentWall {
    /// Serial/parallel ratio, `None` when unmeasurable: a 0-duration
    /// parallel leg (smoke scale on a fast host rounds below the clock
    /// tick) has no meaningful ratio, and a non-finite one (0/0, inf
    /// inputs) must never reach the JSON artifact.
    pub fn speedup(&self) -> Option<f64> {
        (self.parallel_secs > 0.0)
            .then(|| self.serial_secs / self.parallel_secs)
            .filter(|s| s.is_finite())
    }
}

/// JSON-safe seconds: `NaN`/`inf` are not valid JSON tokens, so an
/// unmeasurable duration serializes as `null`.
fn json_secs(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// The whole `xp --timing` measurement.
#[derive(Debug, Clone)]
pub struct WallReport {
    pub scale: Scale,
    /// Workers used by the parallel leg.
    pub jobs: usize,
    /// What the host could actually run concurrently.
    pub host_parallelism: usize,
    pub experiments: Vec<ExperimentWall>,
}

impl WallReport {
    pub fn serial_total_secs(&self) -> f64 {
        self.experiments.iter().map(|e| e.serial_secs).sum()
    }

    pub fn parallel_total_secs(&self) -> f64 {
        self.experiments.iter().map(|e| e.parallel_secs).sum()
    }

    pub fn total_speedup(&self) -> Option<f64> {
        let p = self.parallel_total_secs();
        (p > 0.0)
            .then(|| self.serial_total_secs() / p)
            .filter(|s| s.is_finite())
    }

    /// Hand-rolled JSON (the workspace is offline — no serde), same
    /// convention as `sim_throughput::to_json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"xp_wall\",\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!(
            "  \"serial_total_secs\": {},\n",
            json_secs(self.serial_total_secs())
        ));
        out.push_str(&format!(
            "  \"parallel_total_secs\": {},\n",
            json_secs(self.parallel_total_secs())
        ));
        match self.total_speedup() {
            Some(s) => out.push_str(&format!("  \"total_speedup\": {s:.3},\n")),
            None => out.push_str("  \"total_speedup\": null,\n"),
        }
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let speedup = match e.speedup() {
                Some(s) => format!("{s:.3}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"serial_secs\": {}, \
                 \"parallel_secs\": {}, \"speedup\": {}}}{}\n",
                e.name,
                json_secs(e.serial_secs),
                json_secs(e.parallel_secs),
                speedup,
                if i + 1 == self.experiments.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `results/BENCH_xp_wall.json` atomically.
    pub fn emit(&self) {
        match write_results_atomic("BENCH_xp_wall.json", &self.to_json()) {
            Ok(path) => println!("[json] {}\n", path.display()),
            Err(e) => eprintln!("warning: could not write results/BENCH_xp_wall.json: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_totals_and_speedups_are_consistent() {
        let r = WallReport {
            scale: Scale::Smoke,
            jobs: 4,
            host_parallelism: 8,
            experiments: vec![
                ExperimentWall {
                    name: "fig9",
                    serial_secs: 4.0,
                    parallel_secs: 1.0,
                },
                ExperimentWall {
                    name: "fig10",
                    serial_secs: 2.0,
                    parallel_secs: 1.0,
                },
            ],
        };
        assert_eq!(r.serial_total_secs(), 6.0);
        assert_eq!(r.parallel_total_secs(), 2.0);
        assert_eq!(r.total_speedup(), Some(3.0));
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"xp_wall\""));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"host_parallelism\": 8"));
        assert!(j.contains("\"total_speedup\": 3.000"));
        assert!(j.contains("\"name\": \"fig9\""));
        assert!(j.contains("\"speedup\": 4.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn zero_wall_reports_null_speedup() {
        let r = WallReport {
            scale: Scale::Quick,
            jobs: 1,
            host_parallelism: 1,
            experiments: vec![ExperimentWall {
                name: "sync",
                serial_secs: 0.0,
                parallel_secs: 0.0,
            }],
        };
        assert_eq!(r.total_speedup(), None);
        assert!(r.to_json().contains("\"total_speedup\": null"));
        assert!(r.to_json().contains("\"speedup\": null"));
    }

    /// Regression test: non-finite inputs (0/0 legs, inf from a broken
    /// clock) must serialize as `null`, never as the invalid-JSON tokens
    /// `NaN`/`inf`.
    #[test]
    fn non_finite_values_serialize_as_null() {
        let r = WallReport {
            scale: Scale::Smoke,
            jobs: 2,
            host_parallelism: 1,
            experiments: vec![
                ExperimentWall {
                    name: "bad_clock",
                    serial_secs: f64::NAN,
                    parallel_secs: f64::NAN,
                },
                ExperimentWall {
                    name: "huge_ratio",
                    serial_secs: f64::INFINITY,
                    parallel_secs: 1.0,
                },
            ],
        };
        assert_eq!(r.experiments[0].speedup(), None);
        assert_eq!(
            r.experiments[1].speedup(),
            None,
            "inf ratio is unmeasurable"
        );
        assert_eq!(r.total_speedup(), None);
        let j = r.to_json();
        for tok in ["NaN", "nan", "inf"] {
            assert!(!j.contains(tok), "invalid JSON token {tok:?} in {j}");
        }
        assert!(j.contains("\"serial_secs\": null"));
        assert!(j.contains("\"speedup\": null"));
    }
}
