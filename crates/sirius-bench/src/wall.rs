//! Harness wall-clock accounting: the `results/BENCH_xp_wall.json`
//! longitudinal series.
//!
//! `xp --timing` runs the full reproduction twice — once with `--jobs 1`
//! (the serial baseline) and once with the requested worker count — and
//! records per-experiment wall-clock for both legs plus the end-to-end
//! speedup. Like `BENCH_sim_throughput.json` (the *simulator* series),
//! the artifact carries the measurement context so CI uploads are
//! self-describing: scale, worker count, and the host's available
//! parallelism (a `jobs = 4` run on a 1-core container is honest about
//! why it shows no speedup).

use crate::scale::Scale;
use crate::table::write_results_atomic;

/// Wall-clock for one experiment, serial vs parallel leg.
#[derive(Debug, Clone)]
pub struct ExperimentWall {
    pub name: &'static str,
    pub serial_secs: f64,
    pub parallel_secs: f64,
}

impl ExperimentWall {
    pub fn speedup(&self) -> Option<f64> {
        (self.parallel_secs > 0.0).then(|| self.serial_secs / self.parallel_secs)
    }
}

/// The whole `xp --timing` measurement.
#[derive(Debug, Clone)]
pub struct WallReport {
    pub scale: Scale,
    /// Workers used by the parallel leg.
    pub jobs: usize,
    /// What the host could actually run concurrently.
    pub host_parallelism: usize,
    pub experiments: Vec<ExperimentWall>,
}

impl WallReport {
    pub fn serial_total_secs(&self) -> f64 {
        self.experiments.iter().map(|e| e.serial_secs).sum()
    }

    pub fn parallel_total_secs(&self) -> f64 {
        self.experiments.iter().map(|e| e.parallel_secs).sum()
    }

    pub fn total_speedup(&self) -> Option<f64> {
        let p = self.parallel_total_secs();
        (p > 0.0).then(|| self.serial_total_secs() / p)
    }

    /// Hand-rolled JSON (the workspace is offline — no serde), same
    /// convention as `sim_throughput::to_json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"xp_wall\",\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!(
            "  \"serial_total_secs\": {:.4},\n",
            self.serial_total_secs()
        ));
        out.push_str(&format!(
            "  \"parallel_total_secs\": {:.4},\n",
            self.parallel_total_secs()
        ));
        match self.total_speedup() {
            Some(s) => out.push_str(&format!("  \"total_speedup\": {s:.3},\n")),
            None => out.push_str("  \"total_speedup\": null,\n"),
        }
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let speedup = match e.speedup() {
                Some(s) => format!("{s:.3}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"serial_secs\": {:.4}, \
                 \"parallel_secs\": {:.4}, \"speedup\": {}}}{}\n",
                e.name,
                e.serial_secs,
                e.parallel_secs,
                speedup,
                if i + 1 == self.experiments.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `results/BENCH_xp_wall.json` atomically.
    pub fn emit(&self) {
        match write_results_atomic("BENCH_xp_wall.json", &self.to_json()) {
            Ok(path) => println!("[json] {}\n", path.display()),
            Err(e) => eprintln!("warning: could not write results/BENCH_xp_wall.json: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_totals_and_speedups_are_consistent() {
        let r = WallReport {
            scale: Scale::Smoke,
            jobs: 4,
            host_parallelism: 8,
            experiments: vec![
                ExperimentWall {
                    name: "fig9",
                    serial_secs: 4.0,
                    parallel_secs: 1.0,
                },
                ExperimentWall {
                    name: "fig10",
                    serial_secs: 2.0,
                    parallel_secs: 1.0,
                },
            ],
        };
        assert_eq!(r.serial_total_secs(), 6.0);
        assert_eq!(r.parallel_total_secs(), 2.0);
        assert_eq!(r.total_speedup(), Some(3.0));
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"xp_wall\""));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"host_parallelism\": 8"));
        assert!(j.contains("\"total_speedup\": 3.000"));
        assert!(j.contains("\"name\": \"fig9\""));
        assert!(j.contains("\"speedup\": 4.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn zero_wall_reports_null_speedup() {
        let r = WallReport {
            scale: Scale::Quick,
            jobs: 1,
            host_parallelism: 1,
            experiments: vec![ExperimentWall {
                name: "sync",
                serial_secs: 0.0,
                parallel_secs: 0.0,
            }],
        };
        assert_eq!(r.total_speedup(), None);
        assert!(r.to_json().contains("\"total_speedup\": null"));
        assert!(r.to_json().contains("\"speedup\": null"));
    }
}
