//! # sirius
//!
//! A full software reproduction of *"Sirius: A Flat Datacenter Network
//! with Nanosecond Optical Switching"* (Ballani et al., SIGCOMM 2020).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — topology, cyclic schedule, Valiant load balancing, the
//!   request/grant congestion-control protocol, reorder buffers, fault
//!   handling (§4).
//! * [`optics`] — AWGRs, the four tunable-laser designs, SOA gates, link
//!   budget, BER/FEC, phase-caching CDR (§3, §6).
//! * [`sync`] — clock models, PLL/DLL, rotating-leader synchronization,
//!   delay calibration (§4.4, §A.2).
//! * [`sim`] — the cell-level Sirius simulator and the idealized
//!   electrical baselines (§7).
//! * [`workload`] — heavy-tailed flow and packet generators (§2.2, §7).
//! * [`power`] — the power/cost analysis (§2, §5).
//!
//! See `examples/` for runnable walkthroughs and `crates/sirius-bench`
//! for the harness that regenerates every figure in the paper.
//!
//! ```
//! use sirius::core::SiriusConfig;
//!
//! let net = SiriusConfig::paper_sim();
//! assert_eq!(net.total_servers(), 3072);
//! assert!((net.epoch().as_us_f64() - 1.6).abs() < 0.01);
//! ```

pub use sirius_core as core;
pub use sirius_optics as optics;
pub use sirius_power as power;
pub use sirius_sim as sim;
pub use sirius_sync as sync;
pub use sirius_workload as workload;
