#!/usr/bin/env bash
# Local CI gate: run exactly what .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "CI green."
