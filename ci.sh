#!/usr/bin/env bash
# Local CI gate: run exactly what .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> audit-enabled conformance (release)"
# Paper-scale runs with the invariant audit on, the §4.5 fault-tolerance
# suite, and the golden run digests — release mode, since the audited
# 128-node runs are too slow for debug builds to gate every push.
cargo test --release -q -p sirius --test conformance --test fault_tolerance --test golden_digests

echo "CI green."
