#!/usr/bin/env bash
# Single source of truth for CI: every stage that .github/workflows/ci.yml
# runs is a function here, and the workflow invokes `./ci.sh <stage>` so
# local runs and CI cannot drift.
#
#   ./ci.sh              run the core gate (fmt clippy build test audit)
#   ./ci.sh <stage>      run one stage: fmt | clippy | build | test |
#                        audit | docs | bench-smoke | scale-smoke |
#                        live-smoke
set -euo pipefail
cd "$(dirname "$0")"

# The repo builds against the 1.95 stable minor (see rust-toolchain.toml;
# the channel is spelled "stable" because offline containers cannot
# resolve a versioned channel, so the pin is asserted here instead).
PINNED_RUST_MINOR="1.95"

check_toolchain() {
  local v
  v="$(rustc --version | awk '{print $2}')"
  case "$v" in
    "$PINNED_RUST_MINOR".*) ;;
    *)
      echo "error: rustc $v does not match pinned minor $PINNED_RUST_MINOR" >&2
      echo "       (update PINNED_RUST_MINOR in ci.sh and rust-toolchain.toml together)" >&2
      exit 1
      ;;
  esac
}

# --- per-stage wall clock -----------------------------------------------
# Every stage runs through run_stage, which stamps its wall-clock at the
# end; the EXIT trap prints the same line when a stage dies mid-way (set
# -e), so a hung-then-killed CI job still reports where the time went.
CI_STAGE=""
STAGE_T0=0

stage_elapsed() {
  if [[ -n "$CI_STAGE" ]]; then
    echo "[ci] stage ${CI_STAGE}: $((SECONDS - STAGE_T0))s elapsed"
  fi
}
trap stage_elapsed EXIT

run_stage() {
  CI_STAGE="$1"
  STAGE_T0=$SECONDS
  "stage_${1//-/_}"
  stage_elapsed
  CI_STAGE=""
}

# --- shared JSON artifact validation ------------------------------------
# validate_bench_json <file> <key-pattern>...: the artifact must exist and
# be non-empty, every key pattern (grep -E) must appear, and no non-finite
# number (NaN/inf — invalid JSON) may leak in. Every BENCH_*.json a
# downstream gate reads goes through this instead of hand-rolled loops.
validate_bench_json() {
  local file="$1"
  shift
  if ! test -s "$file"; then
    echo "error: $file is missing or empty" >&2
    exit 1
  fi
  local key
  for key in "$@"; do
    if ! grep -qE "$key" "$file"; then
      echo "error: $file is missing $key" >&2
      exit 1
    fi
  done
  if grep -nEi '\b(nan|inf|infinity)\b' "$file"; then
    echo "error: non-finite number leaked into $file" >&2
    exit 1
  fi
  echo "$(basename "$file") schema and finiteness OK"
}

stage_fmt() {
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check
}

stage_clippy() {
  echo "==> cargo clippy (deny warnings)"
  cargo clippy --workspace --all-targets -- -D warnings
}

stage_build() {
  echo "==> cargo build --release"
  cargo build --release --workspace
}

stage_test() {
  echo "==> cargo test"
  cargo test -q --workspace
}

stage_audit() {
  echo "==> audit-enabled conformance (release)"
  # Paper-scale runs with the invariant audit on, the §4.5 fault-tolerance
  # suite, and the golden run digests — release mode, since the audited
  # 128-node runs are too slow for debug builds to gate every push.
  cargo test --release -q -p sirius --test conformance --test fault_tolerance --test golden_digests
}

stage_docs() {
  echo "==> cargo doc (deny warnings)"
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
}

stage_bench_smoke() {
  echo "==> bench smoke (fault_tolerance + repair_granularity + correlated_faults + sim_throughput, reduced scale)"
  # Exercises the experiment harnesses end-to-end at reduced scale and
  # leaves results/*.csv and results/*.json behind for the workflow to
  # upload as artifacts. Harnesses run with --jobs 2 to cover the
  # parallel sweep path. sim_throughput runs at quick scale: CI machines
  # are too noisy for the paper-scale speedup gate (that number is
  # measured locally and recorded in EXPERIMENTS.md), but the harness
  # path — including the BENCH_sim_throughput.json emitter — is covered.
  cargo run --release -p sirius-bench --bin fault_tolerance -- --smoke --jobs 2
  cargo run --release -p sirius-bench --bin repair_granularity -- --smoke --jobs 2

  echo "==> correlated_faults --smoke under SIRIUS_SHARDS=2"
  # The correlated-domain + Byzantine evaluation end to end, with every
  # run's slot engine sharded (the digest contract makes this free), then
  # schema/sanity validation of the JSON artifact.
  SIRIUS_SHARDS=2 cargo run --release -p sirius-bench --bin correlated_faults -- --smoke --jobs 2
  validate_bench_json results/BENCH_correlated_faults.json \
    '"bench": "correlated_faults"' '"silence_bound_epochs"' '"bank": \[' \
    '"byzantine": \[' '"drop_rate"' '"max_forged_per_epoch"' '"domains"' \
    '"cf_link"' '"cf_node"' '"advantage"'

  echo "==> sharded-equals-serial (sim_throughput digests, --shards 1 vs --shards 2)"
  # The slot-engine sharding contract — now covering the
  # receiver-partitioned deliver phase as well as TX — checked on the
  # real artifacts: a quick-scale run with --shards 2 must report the
  # same per-mode run digests as --shards 1. (The bin also asserts this
  # in-process when --shards > 1; the cross-invocation compare below
  # additionally pins that the serial engine itself didn't drift between
  # the two runs.)
  cargo run --release -p sirius-bench --bin sim_throughput -- --quick --jobs 2 --shards 1
  grep -o '"digest": "[0-9a-f]*"' results/BENCH_sim_throughput.json > results/.digests_serial
  cargo run --release -p sirius-bench --bin sim_throughput -- --quick --jobs 2 --shards 2
  grep -o '"digest": "[0-9a-f]*"' results/BENCH_sim_throughput.json | head -n 3 > results/.digests_sharded_serialleg
  cmp results/.digests_serial results/.digests_sharded_serialleg
  rm -f results/.digests_serial results/.digests_sharded_serialleg
  echo "sim_throughput digests byte-identical across --shards 1 and --shards 2"
  # Schema-gate the artifact, including the per-plane wall breakdown
  # (tx/deliver/merge) the sharded-deliver work reports per point.
  validate_bench_json results/BENCH_sim_throughput.json \
    '"bench": "sim_throughput"' '"host_parallelism"' '"shards"' \
    '"tx_secs"' '"deliver_secs"' '"merge_secs"' '"cells_per_sec"' \
    '"protocol_sharded_speedup_vs_serial"' '"digest"'

  echo "==> test suite under SIRIUS_SHARDS=2 (release)"
  # Every simulation in the suite that reaches the release NullObserver
  # path runs sharded; digest-pinned tests (golden, determinism,
  # conformance) must be unaffected.
  SIRIUS_SHARDS=2 cargo test --release -q --workspace

  echo "==> parallel-equals-serial (fig9 CSVs, --jobs 1 vs --jobs 2)"
  # The executor's determinism contract, checked on the real artifacts:
  # the fig9 CSVs from a serial run and a 2-worker run must be
  # byte-identical. (cargo test covers the same property in-process; this
  # checks the full binary → results/ path.)
  cargo run --release -p sirius-bench --bin fig9 -- --smoke --jobs 1
  mkdir -p results/.serial
  cp results/fig9a.csv results/fig9b.csv results/.serial/
  cargo run --release -p sirius-bench --bin fig9 -- --smoke --jobs 2
  cmp results/.serial/fig9a.csv results/fig9a.csv
  cmp results/.serial/fig9b.csv results/fig9b.csv
  rm -rf results/.serial
  echo "fig9 CSVs byte-identical across --jobs 1 and --jobs 2"

  echo "==> xp --timing (smoke scale): emit results/BENCH_xp_wall.json"
  # Runs the full reproduction twice (serial, then --jobs 2) and records
  # per-experiment wall-clock; the workflow uploads the JSON artifact.
  # (Keys only — a 0-duration leg reports null ratios, which the
  # finiteness check inside the validator also covers.)
  cargo run --release -p sirius-bench --bin xp -- --smoke --timing --jobs 2
  validate_bench_json results/BENCH_xp_wall.json \
    '"bench": "xp_wall"' '"experiments": \[' '"serial_total_secs"' \
    '"parallel_total_secs"' '"total_speedup"'
}

stage_scale_smoke() {
  echo "==> scale-out series smoke (streaming engine, memory gates)"
  # The smoke series (128 → 512 nodes, ending in a same-geometry pair
  # with 8× the flows) on the streaming engine. The binary exits
  # non-zero itself if the in-flight flow bound is violated; the JSON
  # carries both gate verdicts so this stage greps booleans instead of
  # re-deriving thresholds in shell. --jobs 1 on this leg: points must
  # complete in order for the process-monotonic VmHWM readings behind
  # the RSS gate to be attributable to their points.
  cargo run --release -p sirius-bench --bin scale_series -- --smoke --jobs 1 --shards 1
  validate_bench_json results/BENCH_scale_series.json \
    '"bench": "scale_series"' '"resident_ok"' '"rss_sublinear"' '"points": \[' \
    '"nodes"' '"grating"' '"flows"' '"cells_per_sec"' '"cells_per_sec_per_core"' \
    '"peak_rss_bytes"' '"resident_flows_max"' '"resident_bound"' \
    '"fct_p50_us": [0-9]' '"fct_p99_us": [0-9]' '"digest"'
  # Residency must hold outright; RSS sub-linearity must hold or be
  # honestly unmeasurable (null — e.g. no /proc), never false.
  if ! grep -q '"resident_ok": true' results/BENCH_scale_series.json; then
    echo "error: resident flow state exceeded its bound (see scale_series.csv)" >&2
    exit 1
  fi
  if ! grep -qE '"rss_sublinear": (true|null)' results/BENCH_scale_series.json; then
    echo "error: peak RSS grew super-linearly in total flows" >&2
    exit 1
  fi
  grep -o '"digest": "[0-9a-f]*"' results/BENCH_scale_series.json > results/.scale_digests_serial

  echo "==> scale series sharded-equals-serial (--shards 2, --jobs 2)"
  # The streaming engine honors the same sharding contract as the slice
  # path: per-point digests from a sharded, parallel-sweep run must
  # match the serial single-worker leg above (this doubles as the
  # jobs-determinism check on the real artifact).
  cargo run --release -p sirius-bench --bin scale_series -- --smoke --jobs 2 --shards 2
  grep -o '"digest": "[0-9a-f]*"' results/BENCH_scale_series.json > results/.scale_digests_sharded
  cmp results/.scale_digests_serial results/.scale_digests_sharded
  rm -f results/.scale_digests_serial results/.scale_digests_sharded
  echo "scale_series digests byte-identical across --shards 1 and --shards 2"
}

stage_live_smoke() {
  echo "==> live-process sync smoke (sirius-sync-node over UDP loopback)"
  # The same SyncEngine that runs in-sim, as 4 real OS processes over
  # UDP/loopback. The bin exits non-zero unless the cluster locks: every
  # node reports, nobody is deaf, and the worst p99 applied-correction
  # magnitude stays inside one epoch. Loopback measures the host's
  # scheduler wakeup latency (tens of µs), not the paper's ps-scale
  # optics — the artifact carries the in-sim prediction next to the
  # measurement so that gap stays explicit, and `locked` is the verdict.
  #
  # Build both binaries up front: the orchestrator execs a *sibling*
  # sirius-sync-node, which `cargo run -p sirius-bench` alone would not
  # build (it belongs to sirius-sync), and compile time must not count
  # against the wall-clock bound below.
  cargo build --release -p sirius-sync -p sirius-bench
  local t0=$SECONDS
  cargo run --release -p sirius-bench --bin live_sync -- --smoke
  local elapsed=$((SECONDS - t0))
  # Smoke preset paces 1500 epochs x 2 ms + calibration ≈ 3-4 s once
  # built; the orchestrator kills the cluster at its internal deadline,
  # so a stage blowing well past that means processes hung.
  if (( elapsed > 90 )); then
    echo "error: live smoke took ${elapsed}s (expected a few seconds)" >&2
    exit 1
  fi
  validate_bench_json results/BENCH_live_sync.json \
    '"bench": "live_sync"' '"transport": "udp_loopback"' '"locked": true' \
    '"applied_total"' '"applied_expected"' '"achieved_p50_ps": [0-9]' \
    '"achieved_p99_ps": [0-9]' '"achieved_max_ps": [0-9]' \
    '"sim_max_deviation_ps"' '"node_reports": \['
}

case "${1-all}" in
  fmt) check_toolchain; run_stage fmt ;;
  clippy) check_toolchain; run_stage clippy ;;
  build) check_toolchain; run_stage build ;;
  test) check_toolchain; run_stage test ;;
  audit) check_toolchain; run_stage audit ;;
  docs) check_toolchain; run_stage docs ;;
  bench-smoke) check_toolchain; run_stage bench-smoke ;;
  scale-smoke) check_toolchain; run_stage scale-smoke ;;
  live-smoke) check_toolchain; run_stage live-smoke ;;
  all)
    check_toolchain
    run_stage fmt
    run_stage clippy
    run_stage build
    run_stage test
    run_stage audit
    echo "CI green."
    ;;
  *)
    echo "usage: $0 [fmt|clippy|build|test|audit|docs|bench-smoke|scale-smoke|live-smoke]" >&2
    exit 2
    ;;
esac
