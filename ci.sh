#!/usr/bin/env bash
# Single source of truth for CI: every stage that .github/workflows/ci.yml
# runs is a function here, and the workflow invokes `./ci.sh <stage>` so
# local runs and CI cannot drift.
#
#   ./ci.sh              run the core gate (fmt clippy build test audit)
#   ./ci.sh <stage>      run one stage: fmt | clippy | build | test |
#                        audit | docs | bench-smoke
set -euo pipefail
cd "$(dirname "$0")"

# The repo builds against the 1.95 stable minor (see rust-toolchain.toml;
# the channel is spelled "stable" because offline containers cannot
# resolve a versioned channel, so the pin is asserted here instead).
PINNED_RUST_MINOR="1.95"

check_toolchain() {
  local v
  v="$(rustc --version | awk '{print $2}')"
  case "$v" in
    "$PINNED_RUST_MINOR".*) ;;
    *)
      echo "error: rustc $v does not match pinned minor $PINNED_RUST_MINOR" >&2
      echo "       (update PINNED_RUST_MINOR in ci.sh and rust-toolchain.toml together)" >&2
      exit 1
      ;;
  esac
}

stage_fmt() {
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check
}

stage_clippy() {
  echo "==> cargo clippy (deny warnings)"
  cargo clippy --workspace --all-targets -- -D warnings
}

stage_build() {
  echo "==> cargo build --release"
  cargo build --release --workspace
}

stage_test() {
  echo "==> cargo test"
  cargo test -q --workspace
}

stage_audit() {
  echo "==> audit-enabled conformance (release)"
  # Paper-scale runs with the invariant audit on, the §4.5 fault-tolerance
  # suite, and the golden run digests — release mode, since the audited
  # 128-node runs are too slow for debug builds to gate every push.
  cargo test --release -q -p sirius --test conformance --test fault_tolerance --test golden_digests
}

stage_docs() {
  echo "==> cargo doc (deny warnings)"
  RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
}

stage_bench_smoke() {
  echo "==> bench smoke (fault_tolerance + repair_granularity + correlated_faults + sim_throughput, reduced scale)"
  # Exercises the experiment harnesses end-to-end at reduced scale and
  # leaves results/*.csv and results/*.json behind for the workflow to
  # upload as artifacts. Harnesses run with --jobs 2 to cover the
  # parallel sweep path. sim_throughput runs at quick scale: CI machines
  # are too noisy for the paper-scale speedup gate (that number is
  # measured locally and recorded in EXPERIMENTS.md), but the harness
  # path — including the BENCH_sim_throughput.json emitter — is covered.
  cargo run --release -p sirius-bench --bin fault_tolerance -- --smoke --jobs 2
  cargo run --release -p sirius-bench --bin repair_granularity -- --smoke --jobs 2

  echo "==> correlated_faults --smoke under SIRIUS_SHARDS=2"
  # The correlated-domain + Byzantine evaluation end to end, with every
  # run's slot engine sharded (the digest contract makes this free), then
  # schema/sanity validation of the JSON artifact: the keys a downstream
  # gate reads must exist, and no non-finite number may leak in.
  SIRIUS_SHARDS=2 cargo run --release -p sirius-bench --bin correlated_faults -- --smoke --jobs 2
  test -s results/BENCH_correlated_faults.json
  for key in '"bench": "correlated_faults"' '"silence_bound_epochs"' '"bank": \[' \
             '"byzantine": \[' '"drop_rate"' '"max_forged_per_epoch"' '"domains"' \
             '"cf_link"' '"cf_node"' '"advantage"'; do
    if ! grep -qE "$key" results/BENCH_correlated_faults.json; then
      echo "error: BENCH_correlated_faults.json is missing $key" >&2
      exit 1
    fi
  done
  if grep -nEi '\b(nan|inf|infinity)\b' results/BENCH_correlated_faults.json; then
    echo "error: non-finite number leaked into BENCH_correlated_faults.json" >&2
    exit 1
  fi
  echo "BENCH_correlated_faults.json schema and finiteness OK"

  echo "==> sharded-equals-serial (sim_throughput digests, --shards 1 vs --shards 2)"
  # The slot-engine sharding contract, checked on the real artifacts: a
  # quick-scale run with --shards 2 must report the same per-mode run
  # digests as --shards 1. (The bin also asserts this in-process when
  # --shards > 1; the cross-invocation compare below additionally pins
  # that the serial engine itself didn't drift between the two runs.)
  cargo run --release -p sirius-bench --bin sim_throughput -- --quick --jobs 2 --shards 1
  grep -o '"digest": "[0-9a-f]*"' results/BENCH_sim_throughput.json > results/.digests_serial
  cargo run --release -p sirius-bench --bin sim_throughput -- --quick --jobs 2 --shards 2
  grep -o '"digest": "[0-9a-f]*"' results/BENCH_sim_throughput.json | head -n 3 > results/.digests_sharded_serialleg
  cmp results/.digests_serial results/.digests_sharded_serialleg
  rm -f results/.digests_serial results/.digests_sharded_serialleg
  echo "sim_throughput digests byte-identical across --shards 1 and --shards 2"

  echo "==> test suite under SIRIUS_SHARDS=2 (release)"
  # Every simulation in the suite that reaches the release NullObserver
  # path runs sharded; digest-pinned tests (golden, determinism,
  # conformance) must be unaffected.
  SIRIUS_SHARDS=2 cargo test --release -q --workspace

  echo "==> parallel-equals-serial (fig9 CSVs, --jobs 1 vs --jobs 2)"
  # The executor's determinism contract, checked on the real artifacts:
  # the fig9 CSVs from a serial run and a 2-worker run must be
  # byte-identical. (cargo test covers the same property in-process; this
  # checks the full binary → results/ path.)
  cargo run --release -p sirius-bench --bin fig9 -- --smoke --jobs 1
  mkdir -p results/.serial
  cp results/fig9a.csv results/fig9b.csv results/.serial/
  cargo run --release -p sirius-bench --bin fig9 -- --smoke --jobs 2
  cmp results/.serial/fig9a.csv results/fig9a.csv
  cmp results/.serial/fig9b.csv results/fig9b.csv
  rm -rf results/.serial
  echo "fig9 CSVs byte-identical across --jobs 1 and --jobs 2"

  echo "==> xp --timing (smoke scale): emit results/BENCH_xp_wall.json"
  # Runs the full reproduction twice (serial, then --jobs 2) and records
  # per-experiment wall-clock; the workflow uploads the JSON artifact.
  cargo run --release -p sirius-bench --bin xp -- --smoke --timing --jobs 2
  test -s results/BENCH_xp_wall.json
  # Wall-report validation: every ratio and duration must be a JSON
  # number or null — a 0-duration leg must never leak the invalid-JSON
  # tokens NaN/inf into the artifact.
  if grep -nEi '\b(nan|inf|infinity)\b' results/BENCH_xp_wall.json; then
    echo "error: non-finite number leaked into BENCH_xp_wall.json" >&2
    exit 1
  fi
}

case "${1-all}" in
  fmt) check_toolchain; stage_fmt ;;
  clippy) check_toolchain; stage_clippy ;;
  build) check_toolchain; stage_build ;;
  test) check_toolchain; stage_test ;;
  audit) check_toolchain; stage_audit ;;
  docs) check_toolchain; stage_docs ;;
  bench-smoke) check_toolchain; stage_bench_smoke ;;
  all)
    check_toolchain
    stage_fmt
    stage_clippy
    stage_build
    stage_test
    stage_audit
    echo "CI green."
    ;;
  *)
    echo "usage: $0 [fmt|clippy|build|test|audit|docs|bench-smoke]" >&2
    exit 2
    ;;
esac
