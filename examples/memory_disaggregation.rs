//! Memory disaggregation on Sirius: remote-memory pages fetched across
//! the fabric, the second hardware-driven workload of §1/§2.1.
//!
//! Compute servers fault 4 KB pages from memory servers. What matters is
//! the *tail* of page-fault latency — a CPU stalls for the whole fetch —
//! and the high fan-out (every compute node talks to many memory nodes).
//! This example measures the page-fetch latency distribution on Sirius at
//! increasing fault rates and shows the cliff where the fabric saturates.
//!
//! ```sh
//! cargo run --release --example memory_disaggregation
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius_core::units::{Duration, Rate, Time};
use sirius_core::SiriusConfig;
use sirius_sim::{SiriusSim, SiriusSimConfig};
use sirius_workload::Flow;

const PAGE: u64 = 4096;

fn page_faults(
    compute: &[u32],
    memory: &[u32],
    faults_per_sec_per_node: f64,
    n_faults: u64,
    seed: u64,
) -> Vec<Flow> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let total_rate = faults_per_sec_per_node * compute.len() as f64;
    let mut t = 0f64; // seconds
    let mut flows = Vec::new();
    for id in 0..n_faults {
        let u: f64 = 1.0 - rng.gen::<f64>();
        t += -u.ln() / total_rate;
        flows.push(Flow {
            id,
            src_server: memory[rng.gen_range(0..memory.len())],
            dst_server: compute[rng.gen_range(0..compute.len())],
            bytes: PAGE,
            arrival: Time::from_ps((t * 1e12) as u64),
        });
    }
    flows
}

fn main() {
    let mut net = SiriusConfig::scaled(32, 8);
    net.servers_per_node = 8;
    net.server_rate = Rate::from_gbps(50);
    let n = net.total_servers() as u32;
    // Racks 0..23 host compute, racks 24..31 are the memory pool.
    let compute: Vec<u32> = (0..24 * 8).collect();
    let memory: Vec<u32> = (24 * 8..n).collect();
    println!(
        "disaggregated cluster: {} compute servers faulting 4 KB pages from {} memory servers\n",
        compute.len(),
        memory.len()
    );

    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "faults/s/node", "offered", "p50", "p99", "p99.9", "done%"
    );
    for rate in [50_000.0, 200_000.0, 500_000.0, 1_000_000.0, 2_000_000.0] {
        let wl = page_faults(&compute, &memory, rate, 30_000, 7);
        let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(1);
        cfg.drain_timeout = Duration::from_ms(5);
        let m = SiriusSim::new(cfg).run(&wl);
        let offered_gbps = rate * compute.len() as f64 * PAGE as f64 * 8.0 / 1e9;
        println!(
            "{:>14} {:>9.1}G {:>12} {:>12} {:>12} {:>7}%",
            rate as u64,
            offered_gbps,
            format!("{}", m.fct_percentile(50.0, u64::MAX).unwrap()),
            format!("{}", m.fct_percentile(99.0, u64::MAX).unwrap()),
            format!("{}", m.fct_percentile(99.9, u64::MAX).unwrap()),
            m.completed_flows() * 100 / wl.len() as u64,
        );
    }

    println!(
        "\na 4 KB page is {} cells; the floor is the request/grant pipeline",
        (PAGE as f64 / net.payload_bytes as f64).ceil()
    );
    println!(
        "(~2-3 epochs = {}), and the tail stays flat until the memory-pool",
        net.epoch() * 3
    );
    println!("racks' uplinks saturate — disaggregation runs at fabric speed, not");
    println!("at the speed of a millisecond-scale optical circuit scheduler.");
}
