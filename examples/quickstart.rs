//! Quickstart: build a Sirius network, inspect its schedule, run a small
//! workload, and compare it against the idealized electrical baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sirius_core::schedule::{Schedule, SlotInEpoch};
use sirius_core::topology::{NodeId, UplinkId};
use sirius_core::SiriusConfig;
use sirius_sim::{EsnSim, SiriusSim, SiriusSimConfig};
use sirius_workload::{Pareto, Pattern, WorkloadSpec};

fn main() {
    // 1. A 32-rack Sirius deployment: 8-port gratings, 4 base uplinks per
    //    rack x 1.5 for load balancing, 50 Gbps channels, 100 ns slots.
    let mut net = SiriusConfig::scaled(32, 8);
    net.servers_per_node = 8;
    net.validate().expect("valid config");

    println!("Sirius deployment");
    println!("  racks               : {}", net.nodes);
    println!("  servers             : {}", net.total_servers());
    println!(
        "  uplinks per rack    : {} (base {})",
        net.total_uplinks(),
        net.base_uplinks
    );
    println!("  slot / epoch        : {} / {}", net.slot(), net.epoch());

    // 2. The scheduler-less cyclic schedule: every rack pair is connected
    //    at least once per epoch, with zero runtime computation.
    let sched = Schedule::new(&net);
    let (a, b) = (NodeId(3), NodeId(17));
    let conns = sched.connections(a, b);
    println!("\nschedule: {a} reaches {b} via");
    for c in &conns {
        println!(
            "  uplink {} at epoch slot {} (wavelength {})",
            c.uplink.0,
            c.slot.0,
            sched.wavelength(c.slot).0
        );
    }
    assert_eq!(sched.dest(a, conns[0].uplink, conns[0].slot), b);
    let u0 = UplinkId(0);
    println!(
        "  (and its self-calibration slot: dest(n3, u0, t0) = {})",
        sched.dest(a, u0, SlotInEpoch(0))
    );

    // 3. A heavy-tailed workload at 50% load, as in the paper's §7.
    let spec = WorkloadSpec {
        servers: net.total_servers() as u32,
        server_rate: sirius_core::Rate::from_gbps(25),
        load: 0.5,
        sizes: Pareto::paper_default().truncated(1e6),
        flows: 4_000,
        pattern: Pattern::Uniform,
        seed: 42,
    };
    let wl = spec.generate();
    println!(
        "\nworkload: {} flows, mean size {:.0} B, span {:.2} ms",
        wl.len(),
        spec.sizes.effective_mean(),
        wl.last().unwrap().arrival.as_ms_f64()
    );

    // 4. Run Sirius (request/grant congestion control) ...
    let m = SiriusSim::new(SiriusSimConfig::new(net.clone()).with_seed(1)).run(&wl);
    let servers = net.total_servers() as u64;
    let rate = sirius_core::Rate::from_gbps(25);
    // Goodput over the offered-load window (same horizon for both systems).
    let horizon = wl.last().unwrap().arrival;
    println!("\nSirius results");
    println!(
        "  completed flows     : {}/{}",
        m.completed_flows(),
        wl.len()
    );
    println!(
        "  p99 FCT (short)     : {}",
        m.fct_percentile(99.0, 100_000).unwrap()
    );
    println!(
        "  goodput (window)    : {:.3}",
        m.goodput_within(horizon, servers, rate)
    );
    println!("  peak queue per rack : {} B", m.peak_node_fabric_bytes());
    println!(
        "  peak reorder buffer : {} B/flow",
        m.peak_reorder_flow_bytes
    );

    // 5. ... and the idealized non-blocking electrical network.
    let e = EsnSim::new(sirius_sim::EsnConfig {
        servers: net.total_servers() as u32,
        server_rate: rate,
        servers_per_rack: net.servers_per_node as u32,
        oversubscription: 1.0,
        base_latency: sirius_core::Duration::from_us(3),
    })
    .run(&wl);
    println!("\nESN (Ideal) results");
    println!(
        "  p99 FCT (short)     : {}",
        e.fct_percentile(99.0, 100_000).unwrap()
    );
    println!(
        "  goodput (window)    : {:.3}",
        e.goodput_within(horizon, servers, rate)
    );

    println!("\nSirius approximates the ideal electrical fabric — at a fraction");
    println!("of the power (run `cargo run -p sirius-bench --bin fig6`).");
}
