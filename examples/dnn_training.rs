//! Distributed DNN training on Sirius: the hardware-driven, high-fanout
//! workload that motivates nanosecond optical switching (§1, §2.1).
//!
//! Simulates ring all-reduce phases: every server exchanges gradient
//! shards with ring neighbours at increasing strides, producing the
//! all-to-all-ish pattern accelerators generate — bursty, high fanout,
//! latency critical. Compares Sirius against the ideal electrical fabric
//! and a 3:1 oversubscribed one (what cost-capped operators actually buy).
//!
//! ```sh
//! cargo run --release --example dnn_training
//! ```

use sirius_core::units::{Duration, Rate, Time};
use sirius_core::SiriusConfig;
use sirius_sim::{EsnConfig, EsnSim, SiriusSim, SiriusSimConfig};
use sirius_workload::Flow;

/// Build the flow list of one all-reduce step: `shards` ring phases, each
/// server sending a `shard_bytes` gradient shard to its stride neighbour.
fn allreduce_flows(servers: u32, shards: u32, shard_bytes: u64, phase_gap: Duration) -> Vec<Flow> {
    let mut flows = Vec::new();
    let mut id = 0u64;
    let mut t = Time::ZERO;
    for phase in 0..shards {
        let stride = 1 + phase % (servers - 1);
        for s in 0..servers {
            flows.push(Flow {
                id,
                src_server: s,
                dst_server: (s + stride) % servers,
                bytes: shard_bytes,
                arrival: t,
            });
            id += 1;
        }
        t += phase_gap;
    }
    flows
}

fn main() {
    // A 256-GPU training cluster: 32 racks x 8 accelerator servers.
    let mut net = SiriusConfig::scaled(32, 8);
    net.servers_per_node = 8;
    let servers = net.total_servers() as u32;
    let rate = Rate::from_gbps(25);

    // 16 ring phases of 2 MB gradient shards (a ~32 MB bucket per step),
    // phases launched every 100 us.
    let flows = allreduce_flows(servers, 16, 2_000_000, Duration::from_us(100));
    let total_gb = flows.iter().map(|f| f.bytes).sum::<u64>() as f64 / 1e9;
    println!(
        "all-reduce step: {} flows, {:.1} GB total across {} servers\n",
        flows.len(),
        total_gb,
        servers
    );

    let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(7);
    cfg.drain_timeout = Duration::from_ms(50);
    let sirius = SiriusSim::new(cfg).run(&flows);

    let esn = |osub: f64| {
        EsnSim::new(EsnConfig {
            servers,
            server_rate: rate,
            servers_per_rack: net.servers_per_node as u32,
            oversubscription: osub,
            base_latency: Duration::from_us(3),
        })
        .run(&flows)
    };
    let ideal = esn(1.0);
    let osub = esn(3.0);

    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "system", "p99 FCT", "mean FCT", "step time"
    );
    for (name, m) in [
        ("Sirius", &sirius),
        ("ESN (Ideal)", &ideal),
        ("ESN-OSUB 3:1 (Ideal)", &osub),
    ] {
        let last = m
            .flows
            .iter()
            .filter_map(|f| f.completion)
            .max()
            .map(|t| format!("{:.2} ms", t.as_ms_f64()))
            .unwrap_or_else(|| "incomplete".into());
        println!(
            "{:<22} {:>14} {:>14} {:>12}",
            name,
            format!("{}", m.fct_percentile(99.0, u64::MAX).unwrap()),
            format!("{}", m.fct_mean(u64::MAX).unwrap()),
            last,
        );
        assert_eq!(m.incomplete_flows, 0, "{name}: flows stuck");
    }

    let s = sirius
        .flows
        .iter()
        .filter_map(|f| f.completion)
        .max()
        .unwrap();
    let o = osub
        .flows
        .iter()
        .filter_map(|f| f.completion)
        .max()
        .unwrap();
    println!(
        "\nSirius finishes the all-reduce {:.1}x faster than the oversubscribed",
        o.as_ms_f64() / s.as_ms_f64().max(1e-9)
    );
    println!("fabric — with a passive core and no electrical switches above the rack.");
}
