//! Run the simulator with the invariant audit and run digest enabled and
//! print what they observed: cell conservation, §4.3 queue bounds,
//! in-order release, receive-port exclusivity, and the digest that makes
//! two identical runs comparable bit-for-bit.
//!
//! ```sh
//! cargo run --release --example audit_demo
//! ```

use sirius_core::SiriusConfig;
use sirius_sim::{CcMode, SiriusSim, SiriusSimConfig};
use sirius_workload::{Pareto, Pattern, WorkloadSpec};

fn main() {
    let mut net = SiriusConfig::scaled(32, 8);
    net.servers_per_node = 8;
    let wl = WorkloadSpec {
        servers: net.total_servers() as u32,
        server_rate: net.server_rate,
        load: 0.4,
        sizes: Pareto::paper_default().truncated(1e6),
        flows: 4_000,
        pattern: Pattern::Uniform,
        seed: 42,
    }
    .generate();

    for mode in [CcMode::Protocol, CcMode::Ideal, CcMode::Greedy] {
        // The audit defaults to off in release builds; opt in per run.
        let cfg = SiriusSimConfig::new(net.clone())
            .with_mode(mode)
            .with_audit(true);
        let m = SiriusSim::new(cfg.clone()).run(&wl);
        let again = SiriusSim::new(cfg).run(&wl).digest;
        let audit = m.audit.expect("audit was enabled");
        println!("{mode:?}");
        println!("  digest              : {:#018x}", m.digest);
        println!(
            "  rerun digest        : {:#018x} ({})",
            again,
            if again == m.digest {
                "bit-identical"
            } else {
                "MISMATCH"
            }
        );
        println!("  epochs audited      : {}", audit.epochs_checked);
        println!(
            "  cells injected/out  : {} / {}",
            audit.cells_injected, audit.cells_released
        );
        println!(
            "  violations          : {} ({})",
            audit.total_violations,
            if audit.is_clean() { "clean" } else { "DIRTY" }
        );
        for v in &audit.violations {
            println!("    - {v}");
        }
    }
}
