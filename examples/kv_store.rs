//! A key-value store / in-memory cache workload: the bursty, small-packet
//! traffic of §2.2 ("over 34% of the packets comprise less than 128 bytes
//! while 97.8% are 576 bytes or less"), with the incast fan-in that makes
//! tails hard.
//!
//! Demonstrates why packet-granularity optical switching matters: each
//! tiny request/response fits in a single Sirius cell, so the tail is set
//! by the epoch pipeline, not by milliseconds of circuit reconfiguration.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius_core::units::{Duration, Rate, Time};
use sirius_core::SiriusConfig;
use sirius_sim::{EsnConfig, EsnSim, SiriusSim, SiriusSimConfig};
use sirius_workload::{Flow, PacketSizes};

fn main() {
    let mut net = SiriusConfig::scaled(32, 8);
    net.servers_per_node = 8;
    let servers = net.total_servers() as u32;
    let rate = Rate::from_gbps(25);

    // 20k requests: sizes drawn from the production packet-size mixture;
    // 30% of them are incast responses converging on 4 hot cache servers.
    let sizes = PacketSizes::production_cloud();
    let hot = [5u32, 77, 130, 201];
    let mut rng = SmallRng::seed_from_u64(99);
    let mut flows = Vec::new();
    let mut t = Time::ZERO;
    for id in 0..20_000u64 {
        t += Duration::from_ns(rng.gen_range(20..120));
        let (src, dst) = if rng.gen::<f64>() < 0.3 {
            let dst = hot[rng.gen_range(0..hot.len())];
            let mut src = rng.gen_range(0..servers - 1);
            if src >= dst {
                src += 1;
            }
            (src, dst)
        } else {
            let src = rng.gen_range(0..servers);
            let mut dst = rng.gen_range(0..servers - 1);
            if dst >= src {
                dst += 1;
            }
            (src, dst)
        };
        flows.push(Flow {
            id,
            src_server: src,
            dst_server: dst,
            bytes: sizes.sample(&mut rng) as u64,
            arrival: t,
        });
    }
    let small = flows.iter().filter(|f| f.bytes < 128).count();
    let le576 = flows.iter().filter(|f| f.bytes <= 576).count();
    println!(
        "kv workload: {} requests ({}% < 128 B, {}% <= 576 B), 30% incast on {} hot servers\n",
        flows.len(),
        small * 100 / flows.len(),
        le576 * 100 / flows.len(),
        hot.len()
    );

    let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(3);
    cfg.drain_timeout = Duration::from_ms(20);
    let sirius = SiriusSim::new(cfg).run(&flows);
    let esn = EsnSim::new(EsnConfig {
        servers,
        server_rate: rate,
        servers_per_rack: net.servers_per_node as u32,
        oversubscription: 1.0,
        base_latency: Duration::from_us(3),
    })
    .run(&flows);

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "system", "p50 FCT", "p99 FCT", "p99.9 FCT", "done"
    );
    for (name, m) in [("Sirius", &sirius), ("ESN (Ideal)", &esn)] {
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>9}%",
            name,
            format!("{}", m.fct_percentile(50.0, u64::MAX).unwrap()),
            format!("{}", m.fct_percentile(99.0, u64::MAX).unwrap()),
            format!("{}", m.fct_percentile(99.9, u64::MAX).unwrap()),
            m.completed_flows() * 100 / flows.len() as u64,
        );
    }

    println!(
        "\nevery request fits in {} cell(s); peak reorder buffer was {} B,",
        (sizes.mean() / net.payload_bytes as f64).ceil(),
        sirius.peak_reorder_flow_bytes
    );
    println!(
        "and the congestion-control protocol kept the worst per-rack fabric queue at {} B.",
        sirius.peak_node_fabric_bytes()
    );
}
