//! Bursty RPC traffic at packet granularity (§2.2): the workload regime
//! that motivates nanosecond reconfiguration.
//!
//! Generates single-packet RPCs with the production packet-size mixture
//! and high fan-out, at increasing burstiness (ON/OFF sources), and shows
//! how the congestion-control queue threshold Q absorbs bursts — the
//! trade-off behind Fig. 10's choice of Q = 4.
//!
//! ```sh
//! cargo run --release --example bursty_rpc
//! ```

use sirius::core::units::{Duration, Rate};
use sirius::core::SiriusConfig;
use sirius::sim::packet_layer::{run_packets, PacketWorkload};
use sirius::sim::SiriusSim;
use sirius::sim::SiriusSimConfig;
use sirius::workload::burst::{peak_to_mean, BurstySpec};
use sirius::workload::{PacketSizes, Pareto};

fn main() {
    let mut net = SiriusConfig::scaled(32, 8);
    net.servers_per_node = 8;
    net.server_rate = Rate::from_gbps(50);

    // Part 1: packet-granular RPCs with fan-out 16.
    println!("== single-packet RPCs, fan-out 16, production size mixture ==");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12}",
        "pkts/s/srv", "offered", "p50", "p99", "p99.9"
    );
    for pps in [100_000.0, 500_000.0, 2_000_000.0] {
        let wl = PacketWorkload {
            servers: net.total_servers() as u32,
            sizes: PacketSizes::production_cloud(),
            pkts_per_sec_per_server: pps,
            fanout: 16,
            packets: 20_000,
            seed: 11,
        };
        let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(1);
        cfg.drain_timeout = Duration::from_ms(2);
        let (_, lat) = run_packets(cfg, &wl);
        println!(
            "{:>12} {:>9.1}G {:>12} {:>12} {:>12}",
            pps as u64,
            wl.offered_bps() / 1e9,
            format!("{}", lat.p50),
            format!("{}", lat.p99),
            format!("{}", lat.p999),
        );
    }

    // Part 2: bursty flows vs the queue threshold Q.
    println!("\n== ON/OFF bursts vs congestion-control threshold Q ==");
    println!(
        "{:>10} {:>12} {:>4} {:>12} {:>14}",
        "burstiness", "peak/mean", "Q", "p99 FCT", "peak queue (B)"
    );
    for burstiness in [1.0, 6.0] {
        let spec = BurstySpec {
            servers: net.total_servers() as u32,
            server_rate: Rate::from_bps(net.node_bandwidth().as_bps() / 8),
            load: 0.4,
            burstiness,
            mean_on_secs: 20e-6,
            sizes: Pareto::paper_default().truncated(1e6),
            flows: 8_000,
            seed: 13,
        };
        let wl = spec.generate();
        let ptm = peak_to_mean(&wl, 20e-6);
        for q in [2usize, 4] {
            let mut n = net.clone();
            n.queue_threshold = q;
            let mut cfg = SiriusSimConfig::new(n).with_seed(1);
            cfg.drain_timeout = Duration::from_ms(2);
            let m = SiriusSim::new(cfg).run(&wl);
            println!(
                "{:>10} {:>12.1} {:>4} {:>12} {:>14}",
                burstiness,
                ptm,
                q,
                m.fct_percentile(99.0, 100_000)
                    .map(|d| format!("{d}"))
                    .unwrap_or("-".into()),
                m.peak_node_fabric_bytes(),
            );
        }
    }
    println!("\nsmall Q keeps queues tight but sheds bursts; Q = 4 absorbs the");
    println!("storm without letting intermediate queues grow — Fig. 10's pick.");
}
