//! Fault tolerance (§4.5): kill a rack mid-run and watch the fabric keep
//! delivering.
//!
//! Valiant load balancing widens the blast radius of a failure — every
//! node detours traffic through every other node — but the cyclic
//! schedule also makes detection fast (every pair reconnects every few
//! microseconds), and after the failure is disseminated the only lasting
//! effect is a proportional 1/N bandwidth loss.
//!
//! ```sh
//! cargo run --release --example failure_injection
//! ```

use sirius_core::topology::NodeId;
use sirius_core::units::{Duration, Rate};
use sirius_core::SiriusConfig;
use sirius_sim::{ScheduledFailure, SiriusSim, SiriusSimConfig};
use sirius_workload::{Pareto, Pattern, WorkloadSpec};

fn main() {
    let mut net = SiriusConfig::scaled(32, 8);
    net.servers_per_node = 8;
    let victim = NodeId(13);

    let spec = WorkloadSpec {
        servers: net.total_servers() as u32,
        server_rate: Rate::from_gbps(25),
        load: 0.4,
        sizes: Pareto::paper_default().truncated(1e6),
        flows: 6_000,
        pattern: Pattern::Uniform,
        seed: 5,
    };
    let wl = spec.generate();
    let victim_servers: Vec<u32> = (victim.0 * 8..victim.0 * 8 + 8).collect();
    let victim_flows = wl
        .iter()
        .filter(|f| {
            victim_servers.contains(&f.src_server) || victim_servers.contains(&f.dst_server)
        })
        .count();
    println!(
        "workload: {} flows ({} touch the victim rack {victim})",
        wl.len(),
        victim_flows
    );

    // Healthy baseline.
    let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(1);
    cfg.drain_timeout = Duration::from_ms(5);
    let healthy = SiriusSim::new(cfg.clone()).run(&wl);

    // Kill rack 13 at epoch 200. Nothing tells routing: the silence
    // detectors inside the simulator must notice the missing scheduled
    // slots and stage the exclusion themselves.
    let mut sim = SiriusSim::new(cfg);
    sim.inject_failures(vec![ScheduledFailure {
        node: victim,
        epoch: 200,
    }]);
    let failed = sim.run(&wl);

    println!("\n{:<24} {:>12} {:>12}", "", "healthy", "rack failure");
    println!(
        "{:<24} {:>12} {:>12}",
        "completed flows",
        healthy.completed_flows(),
        failed.completed_flows()
    );
    println!(
        "{:<24} {:>12} {:>12}",
        "incomplete flows", healthy.incomplete_flows, failed.incomplete_flows
    );
    println!(
        "{:<24} {:>12} {:>12}",
        "p99 FCT (short)",
        format!("{}", healthy.fct_percentile(99.0, 100_000).unwrap()),
        format!("{}", failed.fct_percentile(99.0, 100_000).unwrap()),
    );

    let stranded = failed.incomplete_flows as usize;
    println!(
        "\nthe failure strands {stranded} flows (those sourced at / destined to / in\n\
         flight through rack {victim} inside the detection window); everyone else\n\
         completes — traffic re-detours around the failed rack automatically."
    );
    assert!(stranded <= victim_flows + 200, "blast radius too large");

    // The measured detection pipeline: every number below comes from the
    // silence detectors embedded in the run, not from the script.
    let fr = failed.fault.expect("fault report missing");
    let rec = &fr.failures[0];
    let suspected = rec.first_suspected.expect("victim never suspected");
    let excluded = rec.excluded_at.expect("victim never excluded");
    println!(
        "\nfailure detector: rack {victim} silent from epoch {}, suspected at epoch\n\
         {suspected} ({} epochs = {} of wall clock — 'low overhead yet fast failure\n\
         detection'), excluded from routing at epoch {excluded}.",
        rec.fail_epoch,
        rec.detection_epochs().unwrap(),
        net.epoch() * rec.detection_epochs().unwrap()
    );
    println!(
        "cells blackholed inside the detection window: {}; post-failure capacity\n\
         factor {:.4} vs the §4.5 rule 1 - 1/{} = {:.4}.",
        fr.cells_lost_crash,
        fr.capacity_factor_end,
        net.nodes,
        1.0 - 1.0 / net.nodes as f64
    );
}
