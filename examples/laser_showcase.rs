//! The optical substrate, end to end: tuning latencies of all four laser
//! designs, the link budget with laser sharing, AWGR routing, and the
//! composition of the 3.84 ns end-to-end reconfiguration time.
//!
//! ```sh
//! cargo run --release --example laser_showcase
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sirius_optics::awgr::Awgr;
use sirius_optics::laser::standard::{DriveMode, DsdbrLaser};
use sirius_optics::laser::{CombLaser, FixedLaserBank, TunableLaserBank, TunableSource};
use sirius_optics::link_budget::LinkBudget;
use sirius_optics::transceiver::{v1, v2};

fn show(name: &str, src: &dyn TunableSource) {
    println!(
        "{:<28} {:>4} ch   median {:>12}   worst {:>12}   {:>7.1} W",
        name,
        src.wavelengths(),
        format!("{}", src.median_tuning_latency()),
        format!("{}", src.worst_tuning_latency()),
        src.electrical_power_w(),
    );
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);

    println!("== tunable laser designs (S3.2-S3.3) ==");
    show(
        "DSDBR, stock drive",
        &DsdbrLaser::new(112, DriveMode::Stock),
    );
    show(
        "DSDBR, single-step drive",
        &DsdbrLaser::new(112, DriveMode::SingleStep),
    );
    show(
        "DSDBR, dampened drive (v1)",
        &DsdbrLaser::new(112, DriveMode::Dampened),
    );
    show(
        "fixed bank + SOA (v2 chip)",
        &FixedLaserBank::paper_chip(&mut rng),
    );
    show("pipelined tunable bank", &TunableLaserBank::paper_bank());
    show("comb + SOA selector", &CombLaser::hundred_line(&mut rng));

    println!("\n== AWGR wavelength routing (S3.1) ==");
    let g = Awgr::new(16);
    println!(
        "16-port grating: input 3 + wavelength 7 -> output {} (insertion loss {:.1} dB)",
        g.route(3, 7),
        g.insertion_loss_db()
    );
    println!(
        "to reach output 12 from input 3, tune to wavelength {}",
        g.wavelength_for(3, 12)
    );

    println!("\n== link budget and laser sharing (S4.5) ==");
    let b = LinkBudget::paper();
    println!(
        "laser {} dBm; losses {}+{} dB + {} dB margin; rx floor {} dBm",
        b.laser_dbm, b.coupling_loss_db, b.grating_loss_db, b.margin_db, b.rx_sensitivity_dbm
    );
    println!(
        "-> each transceiver needs {} dBm; one laser feeds {} transceivers;",
        b.required_tx_dbm(),
        b.max_shared_transceivers()
    );
    println!(
        "   a 256-uplink rack needs only {} tunable laser chips (+spares).",
        b.lasers_for_rack(256, 0)
    );

    println!("\n== end-to-end reconfiguration (S6) ==");
    let t1 = v1::transceiver();
    let t2 = v2::transceiver(&mut rng);
    println!("Sirius v1 (DSDBR, 25G NRZ) : {}", t1.reconfiguration_time());
    println!("Sirius v2 (chip, 50G PAM4) : {}", t2.reconfiguration_time());
    println!(
        "v2 overhead at a 38.4 ns slot: {:.1}% (the 10% target of S2.2)",
        t2.guardband_overhead(sirius_core::Duration::from_ps(38_400)) * 100.0
    );
}
